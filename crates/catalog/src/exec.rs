//! The executable query layer: compositional plan → cursor → results.
//!
//! Queries are boolean [`Predicate`] trees (`And`/`Or`/`Not` over the
//! paper's operators, including `@@` nearest-neighbour leaves) with an
//! optional `LIMIT` ([`Query`]).  Planning decomposes a tree into a physical
//! operator tree surfaced as an [`AccessPath`]: index scans for indexable
//! leaves, residual [`AccessPath::Filter`]s for the rest, row-id stream
//! [`AccessPath::Intersect`]/[`AccessPath::Union`] (deduplicated while
//! streaming), [`AccessPath::OrderedScan`]s that run `@@` through the
//! incremental NN search costed like any other path, and
//! [`AccessPath::Limit`] pushdown so cursors stop early instead of
//! materializing.  The sequential scan competes against every strategy on
//! honest cost, and is the fallback when no operator class helps.
//!
//! A [`Table`] registers heap data plus physical indexes (any of the five
//! `SpIndex` implementations), derives the planner's [`AvailableIndex`]
//! statistics automatically from each index's [`TreeStats`], and executes
//! the chosen plan; results stream through an [`ExecCursor`] whose
//! [`ExecCursor::path`]/[`ExecCursor::source`] expose the planned and the
//! actually-dispatched operator trees.
//!
//! [`Database`] is the top-level facade: a catalog, a shared buffer pool and
//! a set of named tables — the "many scenarios, one API" surface of the
//! paper carried to its logical end.
//!
//! **Shared access.** Tables are handed out as `Arc<Table>` handles
//! ([`Database::table_handle`]) that are `Send + Sync`: DML (`insert` /
//! `delete`) and queries take `&self`.  The heap and row directory sit
//! behind a table-level reader-writer latch; the physical indexes are
//! internally concurrent (writers crab per-page latches, index cursors pin
//! a reclamation epoch and never block writers), so the per-table DML lock
//! is what makes a *statement* — heap change plus every index update —
//! atomic with respect to other statements.  Index scans run latch-free:
//! a long cursor delays page reclamation, never a writer.  DDL
//! (`create_index` /
//! `drop_index` / `drop_table`) requires exclusive access (`&mut` /
//! no outstanding handles), the executor's analog of PostgreSQL's
//! `AccessExclusiveLock`.  [`Database::run_parallel`] runs a batch of
//! queries across a scoped thread pool, and [`Table::query_parallel`]
//! partitions large sequential and intersection scans across threads when
//! the cost model says the table is big enough to amortize thread startup.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use spgist_core::{RowId, TreeStats};
use spgist_indexes::geom::{Point, Rect, Segment};
use spgist_indexes::query::{PointQuery, SegmentQuery, StringQuery};
use spgist_indexes::{
    KdTreeIndex, KdTreeOps, PmrQuadtreeIndex, PmrQuadtreeOps, PointQuadtreeIndex, PointQuadtreeOps,
    SpIndex, SuffixTreeIndex, TrieIndex, TrieOps,
};
use spgist_storage::{
    journal, AccessHint, BufferPool, BufferPoolConfig, CheckpointStats, Codec, FilePager, HeapFile,
    MemPager, PageId, RecordId, StorageError, StorageResult,
};
use spgist_wal::{Lsn, TxnId, Wal, WalConfig, WalRecord, AUTOCOMMIT};

use crate::am::Catalog;
use crate::cost::{CostEstimate, Selectivity, TableStats, CPU_OPERATOR_COST};
use crate::durable::{
    self, CatalogLayout, PersistedIndex, PersistedTable, RowsDelta, TableSnapshot, KIND_KDTREE,
    KIND_PMR, KIND_PQUADTREE, KIND_SUFFIX, KIND_TRIE, ROWS_PER_CHUNK,
};
use crate::planner::{AccessPath, AvailableIndex, Planner, QueryPredicate};

// ---------------------------------------------------------------------------
// Typed values and predicates
// ---------------------------------------------------------------------------

/// Key type of a table column (the `key_type` the catalog's operator
/// classes are defined over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyType {
    /// String keys (`VARCHAR`): trie, suffix tree, B⁺-tree classes.
    Varchar,
    /// 2-D point keys (`POINT`): kd-tree, point quadtree, R-tree classes.
    Point,
    /// Line-segment keys (`SEGMENT`): the PMR-quadtree class.
    Segment,
}

impl KeyType {
    /// Catalog spelling of the type name.
    pub fn name(&self) -> &'static str {
        match self {
            KeyType::Varchar => "VARCHAR",
            KeyType::Point => "POINT",
            KeyType::Segment => "SEGMENT",
        }
    }

    /// Stable on-disk tag (durable catalog).
    fn tag(&self) -> u8 {
        match self {
            KeyType::Varchar => 0,
            KeyType::Point => 1,
            KeyType::Segment => 2,
        }
    }

    fn from_tag(tag: u8) -> StorageResult<Self> {
        match tag {
            0 => Ok(KeyType::Varchar),
            1 => Ok(KeyType::Point),
            2 => Ok(KeyType::Segment),
            t => Err(StorageError::Corrupt(format!("invalid key-type tag {t}"))),
        }
    }
}

/// A typed value stored in a table's key column.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// A string.
    Text(String),
    /// A 2-D point.
    Point(Point),
    /// A line segment.
    Segment(Segment),
}

impl Datum {
    /// The key type this value belongs to.
    pub fn key_type(&self) -> KeyType {
        match self {
            Datum::Text(_) => KeyType::Varchar,
            Datum::Point(_) => KeyType::Point,
            Datum::Segment(_) => KeyType::Segment,
        }
    }

    fn encode_record(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Datum::Text(s) => {
                0u8.encode(&mut out);
                s.encode(&mut out);
            }
            Datum::Point(p) => {
                1u8.encode(&mut out);
                p.encode(&mut out);
            }
            Datum::Segment(s) => {
                2u8.encode(&mut out);
                s.encode(&mut out);
            }
        }
        out
    }

    fn decode_record(bytes: &[u8]) -> StorageResult<Self> {
        let mut buf = bytes;
        match u8::decode(&mut buf)? {
            0 => Ok(Datum::Text(String::decode(&mut buf)?)),
            1 => Ok(Datum::Point(Point::decode(&mut buf)?)),
            2 => Ok(Datum::Segment(Segment::decode(&mut buf)?)),
            tag => Err(StorageError::Decode(format!("invalid datum tag {tag}"))),
        }
    }
}

impl From<&str> for Datum {
    fn from(s: &str) -> Self {
        Datum::Text(s.to_string())
    }
}

impl From<String> for Datum {
    fn from(s: String) -> Self {
        Datum::Text(s)
    }
}

impl From<Point> for Datum {
    fn from(p: Point) -> Self {
        Datum::Point(p)
    }
}

impl From<Segment> for Datum {
    fn from(s: Segment) -> Self {
        Datum::Segment(s)
    }
}

/// An executable query predicate: a boolean tree of `And`/`Or`/`Not` over
/// the paper's registered operators applied to typed arguments.
///
/// Unlike [`QueryPredicate`] (operator *name* + key type, all the planner
/// needs), a `Predicate` carries the actual arguments, so the executor can
/// both run its leaves through indexes and re-check the whole tree against
/// heap tuples.  Leaves are built with the constructors below and composed
/// with [`Predicate::and`] / [`Predicate::or`] / [`Predicate::negate`];
/// [`Predicate::limit`] turns the tree into a [`Query`] with `LIMIT`
/// pushdown.
///
/// ```
/// use spgist_catalog::exec::Predicate;
///
/// let q = Predicate::str_prefix("sp")
///     .and(Predicate::str_regex("spa?e"))
///     .or(Predicate::str_equals("star"))
///     .limit(10);
/// # let _ = q;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// A predicate over string keys.
    Str(StringQuery),
    /// A predicate over point keys.
    Point(PointQuery),
    /// A predicate over segment keys.
    Segment(SegmentQuery),
    /// Conjunction: every child predicate must hold (vacuously true when
    /// empty).
    And(Vec<Predicate>),
    /// Disjunction: at least one child predicate must hold (vacuously false
    /// when empty).
    Or(Vec<Predicate>),
    /// Negation of the inner predicate.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `=` over strings.
    pub fn str_equals(word: &str) -> Self {
        Predicate::Str(StringQuery::Equals(word.to_string()))
    }

    /// `#=` (prefix) over strings.
    pub fn str_prefix(prefix: &str) -> Self {
        Predicate::Str(StringQuery::Prefix(prefix.to_string()))
    }

    /// `?=` (single-character-wildcard regex) over strings.
    pub fn str_regex(pattern: &str) -> Self {
        Predicate::Str(StringQuery::Regex(pattern.to_string()))
    }

    /// `@=` (substring) over strings.
    pub fn str_substring(needle: &str) -> Self {
        Predicate::Str(StringQuery::Substring(needle.to_string()))
    }

    /// `@` (point equality).
    pub fn point_equals(point: Point) -> Self {
        Predicate::Point(PointQuery::Equals(point))
    }

    /// `^` (point inside box).
    pub fn point_in_rect(rect: Rect) -> Self {
        Predicate::Point(PointQuery::InRect(rect))
    }

    /// `=` over segments.
    pub fn segment_equals(segment: Segment) -> Self {
        Predicate::Segment(SegmentQuery::Equals(segment))
    }

    /// `&&` (segment intersects box — the PMR window query).
    pub fn segment_in_rect(rect: Rect) -> Self {
        Predicate::Segment(SegmentQuery::InRect(rect))
    }

    /// `@@` over strings: order results by Hamming-style distance to `word`.
    pub fn str_nearest(word: &str) -> Self {
        Predicate::Str(StringQuery::Nearest(word.to_string()))
    }

    /// `@@` over points: order results by Euclidean distance to `anchor`.
    pub fn point_nearest(anchor: Point) -> Self {
        Predicate::Point(PointQuery::Nearest(anchor))
    }

    /// `@@` over segments: order results by minimum Euclidean distance from
    /// `anchor` to the segment.
    pub fn segment_nearest(anchor: Point) -> Self {
        Predicate::Segment(SegmentQuery::Nearest(anchor))
    }

    /// Conjunction with `other`, flattening nested `And`s.
    pub fn and(self, other: Predicate) -> Predicate {
        match self {
            Predicate::And(mut children) => {
                children.push(other);
                Predicate::And(children)
            }
            leaf => Predicate::And(vec![leaf, other]),
        }
    }

    /// Disjunction with `other`, flattening nested `Or`s.
    pub fn or(self, other: Predicate) -> Predicate {
        match self {
            Predicate::Or(mut children) => {
                children.push(other);
                Predicate::Or(children)
            }
            leaf => Predicate::Or(vec![leaf, other]),
        }
    }

    /// Negation of this predicate.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Turns the predicate into a [`Query`] reporting at most `k` rows,
    /// with the limit pushed into every scan operator.
    pub fn limit(self, k: usize) -> Query {
        Query::new(self).limit(k)
    }

    /// The catalog operator name a *leaf* predicate maps to (`"@@"` for
    /// nearest-neighbour anchors, which plan as ordered scans); `None` for
    /// the boolean composites, which have no single operator.
    pub fn operator(&self) -> Option<&'static str> {
        match self {
            Predicate::Str(StringQuery::Equals(_)) => Some("="),
            Predicate::Str(StringQuery::Prefix(_)) => Some("#="),
            Predicate::Str(StringQuery::Regex(_)) => Some("?="),
            Predicate::Str(StringQuery::Substring(_)) => Some("@="),
            Predicate::Str(StringQuery::Nearest(_))
            | Predicate::Point(PointQuery::Nearest(_))
            | Predicate::Segment(SegmentQuery::Nearest(_)) => Some("@@"),
            Predicate::Point(PointQuery::Equals(_)) => Some("@"),
            Predicate::Point(PointQuery::InRect(_)) => Some("^"),
            Predicate::Segment(SegmentQuery::Equals(_)) => Some("="),
            Predicate::Segment(SegmentQuery::InRect(_)) => Some("&&"),
            Predicate::And(_) | Predicate::Or(_) | Predicate::Not(_) => None,
        }
    }

    /// True for a `@@` (nearest-neighbour) leaf.
    pub fn is_ordered_leaf(&self) -> bool {
        matches!(
            self,
            Predicate::Str(StringQuery::Nearest(_))
                | Predicate::Point(PointQuery::Nearest(_))
                | Predicate::Segment(SegmentQuery::Nearest(_))
        )
    }

    /// The `@@` leaf that orders this predicate's output: the leaf itself,
    /// or the single ordered conjunct of a top-level `And` (the constrained
    /// k-NN shape).  `None` for unordered predicates.
    pub fn ordered_driver(&self) -> Option<&Predicate> {
        match self {
            Predicate::And(children) => children.iter().find(|c| c.is_ordered_leaf()),
            leaf if leaf.is_ordered_leaf() => Some(leaf),
            _ => None,
        }
    }

    /// True if this tree has any operator leaf at all (an empty `And`/`Or`
    /// has none and is type-agnostic).
    fn has_leaves(&self) -> bool {
        match self {
            Predicate::And(children) | Predicate::Or(children) => {
                children.iter().any(Predicate::has_leaves)
            }
            Predicate::Not(inner) => inner.has_leaves(),
            _ => true,
        }
    }

    /// True if this tree contains a `@@` leaf anywhere.
    pub fn contains_ordered(&self) -> bool {
        match self {
            Predicate::And(children) | Predicate::Or(children) => {
                children.iter().any(Predicate::contains_ordered)
            }
            Predicate::Not(inner) => inner.contains_ordered(),
            leaf => leaf.is_ordered_leaf(),
        }
    }

    /// The key type this predicate applies to: the type shared by all of its
    /// leaves, or `None` for a leafless tree (empty `And`/`Or`) — and for a
    /// mixed-type tree, which no single-column table can satisfy anyway and
    /// which [`Table::plan`] rejects.
    pub fn key_type(&self) -> Option<KeyType> {
        match self {
            Predicate::Str(_) => Some(KeyType::Varchar),
            Predicate::Point(_) => Some(KeyType::Point),
            Predicate::Segment(_) => Some(KeyType::Segment),
            Predicate::And(children) | Predicate::Or(children) => {
                let mut found = None;
                for child in children {
                    match (found, child.key_type()) {
                        (_, None) => {}
                        (None, some) => found = some,
                        (Some(a), Some(b)) if a == b => {}
                        (Some(_), Some(_)) => return None,
                    }
                }
                found
            }
            Predicate::Not(inner) => inner.key_type(),
        }
    }

    /// Straight-line re-check against a heap tuple (the sequential-scan and
    /// residual filter).  Type-mismatched leaves never match; `@@` leaves
    /// match every tuple of their type (they order, they do not select).
    pub fn matches(&self, datum: &Datum) -> bool {
        match self {
            Predicate::Str(q) => matches!(datum, Datum::Text(s) if q.matches(s)),
            Predicate::Point(q) => matches!(datum, Datum::Point(p) if q.matches(p)),
            Predicate::Segment(q) => matches!(datum, Datum::Segment(s) if q.matches(s)),
            Predicate::And(children) => children.iter().all(|c| c.matches(datum)),
            Predicate::Or(children) => children.iter().any(|c| c.matches(datum)),
            Predicate::Not(inner) => !inner.matches(datum),
        }
    }

    /// Distance from a `@@` leaf's anchor to `datum` (the ordering key of
    /// the sorted sequential-scan fallback).  Infinite for type mismatches
    /// and for non-ordered predicates.
    pub fn distance(&self, datum: &Datum) -> f64 {
        match (self, datum) {
            (Predicate::Str(StringQuery::Nearest(q)), Datum::Text(s)) => {
                spgist_indexes::query::hamming_distance(s, q)
            }
            (Predicate::Point(PointQuery::Nearest(q)), Datum::Point(p)) => p.distance(q),
            (Predicate::Segment(SegmentQuery::Nearest(q)), Datum::Segment(s)) => {
                s.distance_to_point(q)
            }
            _ => f64::INFINITY,
        }
    }

    /// The planner-facing form of a leaf predicate, carrying an
    /// argument-aware selectivity estimate where the argument tells more
    /// than the operator's class-level default.
    pub fn to_query_predicate(&self) -> Option<QueryPredicate> {
        let op = self.operator()?;
        let key_type = self.key_type()?;
        let qp = QueryPredicate::new(op, key_type.name());
        Some(match self.selectivity_hint() {
            Some(s) => qp.with_selectivity(s),
            None => qp,
        })
    }

    /// Argument-aware selectivity for string-match leaves: an empty prefix,
    /// pattern or needle retrieves (nearly) the whole table, and every fixed
    /// character cuts the match fraction — the honesty the planner needs to
    /// route low-selectivity predicates to the heap.
    fn selectivity_hint(&self) -> Option<f64> {
        /// Fraction of rows matched per fixed character: one letter of the
        /// paper's 26-letter uniform word alphabet.
        const PER_CHAR_SEL: f64 = 1.0 / 26.0;
        /// A needle can match at any of roughly `avg word length` positions.
        const POSITIONS: f64 = 8.0;
        /// Rough chance that a random word has exactly the pattern's length
        /// (lengths are uniform over `[1, 15]`).
        const LENGTH_SEL: f64 = 1.0 / 15.0;
        let clamp = |s: f64| s.clamp(1e-9, 1.0);
        match self {
            Predicate::Str(StringQuery::Prefix(p)) => Some(if p.is_empty() {
                1.0
            } else {
                clamp(PER_CHAR_SEL.powi(p.len() as i32))
            }),
            Predicate::Str(StringQuery::Substring(n)) => Some(if n.is_empty() {
                1.0
            } else {
                clamp(POSITIONS * PER_CHAR_SEL.powi(n.len() as i32))
            }),
            Predicate::Str(StringQuery::Regex(r)) => {
                let fixed = r.bytes().filter(|b| *b != b'?').count();
                // The length must match exactly even with all wildcards.
                Some(clamp(LENGTH_SEL * PER_CHAR_SEL.powi(fixed as i32)))
            }
            Predicate::Point(PointQuery::InRect(r))
            | Predicate::Segment(SegmentQuery::InRect(r)) => {
                // Area fraction relative to the paper's [0, 100]² world —
                // far more honest than a flat contsel for window queries,
                // and what the constrained-k-NN costing needs to size the
                // ordered scan's effective limit.
                const WORLD_AREA: f64 = 100.0 * 100.0;
                Some((r.area() / WORLD_AREA).clamp(5e-4, 1.0))
            }
            _ => None,
        }
    }

    /// Estimated fraction of table rows this predicate tree retrieves, under
    /// the planner's independence assumption.
    fn estimate_selectivity(&self, stats: &TableStats) -> f64 {
        match self {
            Predicate::And(children) => children
                .iter()
                .map(|c| c.estimate_selectivity(stats))
                .product(),
            Predicate::Or(children) => children
                .iter()
                .map(|c| c.estimate_selectivity(stats))
                .sum::<f64>()
                .min(1.0),
            Predicate::Not(inner) => 1.0 - inner.estimate_selectivity(stats),
            leaf if leaf.is_ordered_leaf() => 1.0,
            leaf => leaf.selectivity_hint().unwrap_or_else(|| {
                match leaf.operator() {
                    // Equality: eqsel.
                    Some("=") | Some("@") => Selectivity::EqSel.estimate(stats.distinct_values),
                    // Containment / overlap: contsel.
                    Some("^") | Some("&&") => Selectivity::ContSel.estimate(stats.distinct_values),
                    _ => Selectivity::LikeSel.estimate(stats.distinct_values),
                }
            }),
        }
    }
}

/// A complete query: a [`Predicate`] tree plus an optional `LIMIT`.
///
/// Anything accepting `impl Into<Query>` (notably [`Table::query`] and
/// [`Database::query`]) also takes a bare [`Predicate`] or `&Predicate`, so
/// the one-liner form keeps working:
///
/// ```
/// use spgist_catalog::exec::{Predicate, Query};
///
/// let bare: Query = Predicate::str_prefix("sp").into();
/// assert_eq!(bare.limit, None);
/// let limited = Predicate::str_prefix("sp").limit(5);
/// assert_eq!(limited.limit, Some(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The boolean predicate tree to evaluate.
    pub predicate: Predicate,
    /// Maximum number of rows to report; pushed into every scan operator so
    /// cursors stop early instead of materializing.
    pub limit: Option<usize>,
}

impl Query {
    /// A query over `predicate` with no limit.
    pub fn new(predicate: Predicate) -> Self {
        Query {
            predicate,
            limit: None,
        }
    }

    /// Caps the result at `k` rows (`LIMIT k`).
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }
}

impl From<Predicate> for Query {
    fn from(predicate: Predicate) -> Self {
        Query::new(predicate)
    }
}

impl From<&Predicate> for Query {
    fn from(predicate: &Predicate) -> Self {
        Query::new(predicate.clone())
    }
}

impl From<&Query> for Query {
    fn from(query: &Query) -> Self {
        query.clone()
    }
}

// ---------------------------------------------------------------------------
// Physical indexes
// ---------------------------------------------------------------------------

/// What kind of physical index to build on a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexSpec {
    /// Patricia trie (`SP_GiST_trie`, `VARCHAR`).
    Trie,
    /// Suffix tree (`SP_GiST_suffix`, `VARCHAR`).
    SuffixTree,
    /// kd-tree (`SP_GiST_kdtree`, `POINT`).
    KdTree,
    /// Point quadtree (`SP_GiST_pquadtree`, `POINT`).
    PointQuadtree,
    /// PMR quadtree over the given world rectangle (`SP_GiST_pmr`,
    /// `SEGMENT`).
    PmrQuadtree {
        /// The world rectangle the quadtree decomposes.
        world: Rect,
    },
}

impl IndexSpec {
    /// The operator class this physical index is created with.
    pub fn operator_class(&self) -> &'static str {
        match self {
            IndexSpec::Trie => "SP_GiST_trie",
            IndexSpec::SuffixTree => "SP_GiST_suffix",
            IndexSpec::KdTree => "SP_GiST_kdtree",
            IndexSpec::PointQuadtree => "SP_GiST_pquadtree",
            IndexSpec::PmrQuadtree { .. } => "SP_GiST_pmr",
        }
    }

    /// The key type this index can serve.
    pub fn key_type(&self) -> KeyType {
        match self {
            IndexSpec::Trie | IndexSpec::SuffixTree => KeyType::Varchar,
            IndexSpec::KdTree | IndexSpec::PointQuadtree => KeyType::Point,
            IndexSpec::PmrQuadtree { .. } => KeyType::Segment,
        }
    }

    /// Stable byte encoding for WAL `CREATE INDEX` records: the durable
    /// catalog's kind tag, plus the world rectangle where one applies.
    fn encode_spec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            IndexSpec::Trie => KIND_TRIE.encode(&mut out),
            IndexSpec::SuffixTree => KIND_SUFFIX.encode(&mut out),
            IndexSpec::KdTree => KIND_KDTREE.encode(&mut out),
            IndexSpec::PointQuadtree => KIND_PQUADTREE.encode(&mut out),
            IndexSpec::PmrQuadtree { world } => {
                KIND_PMR.encode(&mut out);
                world.encode(&mut out);
            }
        }
        out
    }

    fn decode_spec(bytes: &[u8]) -> StorageResult<Self> {
        let mut buf = bytes;
        let spec = match u8::decode(&mut buf)? {
            KIND_TRIE => IndexSpec::Trie,
            KIND_SUFFIX => IndexSpec::SuffixTree,
            KIND_KDTREE => IndexSpec::KdTree,
            KIND_PQUADTREE => IndexSpec::PointQuadtree,
            KIND_PMR => IndexSpec::PmrQuadtree {
                world: Rect::decode(&mut buf)?,
            },
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "WAL CREATE INDEX record names unknown index kind {tag}"
                )))
            }
        };
        if !buf.is_empty() {
            return Err(StorageError::Corrupt(
                "WAL CREATE INDEX record has trailing bytes".into(),
            ));
        }
        Ok(spec)
    }
}

fn key_type_mismatch() -> StorageError {
    StorageError::Unsupported("datum type does not match the index key type".into())
}

/// Extracts the typed `(key, row)` items a `VARCHAR` index consumes,
/// rejecting any mismatched datum.
fn text_items(items: &[(Datum, RowId)]) -> StorageResult<Vec<(String, RowId)>> {
    items
        .iter()
        .map(|(datum, row)| match datum {
            Datum::Text(s) => Ok((s.clone(), *row)),
            _ => Err(key_type_mismatch()),
        })
        .collect()
}

/// Extracts the typed `(key, row)` items a `POINT` index consumes.
fn point_items(items: &[(Datum, RowId)]) -> StorageResult<Vec<(Point, RowId)>> {
    items
        .iter()
        .map(|(datum, row)| match datum {
            Datum::Point(p) => Ok((*p, *row)),
            _ => Err(key_type_mismatch()),
        })
        .collect()
}

/// Extracts the typed `(key, row)` items a `SEGMENT` index consumes.
fn segment_items(items: &[(Datum, RowId)]) -> StorageResult<Vec<(Segment, RowId)>> {
    items
        .iter()
        .map(|(datum, row)| match datum {
            Datum::Segment(s) => Ok((*s, *row)),
            _ => Err(key_type_mismatch()),
        })
        .collect()
}

/// One of the five physical index kinds, behind a common dispatch point.
enum PhysicalIndex {
    Trie(TrieIndex),
    Suffix(SuffixTreeIndex),
    KdTree(KdTreeIndex),
    Quadtree(PointQuadtreeIndex),
    Pmr(PmrQuadtreeIndex),
}

impl PhysicalIndex {
    fn insert(&self, datum: &Datum, row: RowId) -> StorageResult<()> {
        match (self, datum) {
            (PhysicalIndex::Trie(ix), Datum::Text(s)) => SpIndex::insert(ix, s.clone(), row),
            (PhysicalIndex::Suffix(ix), Datum::Text(s)) => SpIndex::insert(ix, s.clone(), row),
            (PhysicalIndex::KdTree(ix), Datum::Point(p)) => ix.insert(*p, row),
            (PhysicalIndex::Quadtree(ix), Datum::Point(p)) => ix.insert(*p, row),
            (PhysicalIndex::Pmr(ix), Datum::Segment(s)) => ix.insert(*s, row),
            _ => Err(StorageError::Unsupported(
                "datum type does not match the index key type".into(),
            )),
        }
    }

    fn delete(&self, datum: &Datum, row: RowId) -> StorageResult<bool> {
        match (self, datum) {
            (PhysicalIndex::Trie(ix), Datum::Text(s)) => SpIndex::delete(ix, s, row),
            (PhysicalIndex::Suffix(ix), Datum::Text(s)) => SpIndex::delete(ix, s, row),
            (PhysicalIndex::KdTree(ix), Datum::Point(p)) => ix.delete(p, row),
            (PhysicalIndex::Quadtree(ix), Datum::Point(p)) => ix.delete(p, row),
            (PhysicalIndex::Pmr(ix), Datum::Segment(s)) => ix.delete(s, row),
            _ => Err(StorageError::Unsupported(
                "datum type does not match the index key type".into(),
            )),
        }
    }

    /// Inserts a whole batch of `(datum, row)` items in one call per index
    /// (the DML-statement form used by [`Table::insert_many`]).  Atomicity
    /// of the batch with respect to other statements comes from the
    /// caller's DML lock, not from the index.
    fn insert_batch(&self, items: &[(Datum, RowId)]) -> StorageResult<()> {
        match self {
            PhysicalIndex::Trie(ix) => ix.insert_batch(text_items(items)?),
            PhysicalIndex::Suffix(ix) => ix.insert_batch(text_items(items)?),
            PhysicalIndex::KdTree(ix) => ix.insert_batch(point_items(items)?),
            PhysicalIndex::Quadtree(ix) => ix.insert_batch(point_items(items)?),
            PhysicalIndex::Pmr(ix) => ix.insert_batch(segment_items(items)?),
        }
    }

    /// Builds the index from the full `(datum, row)` set in one
    /// `spgistbuild` pass (see [`SpIndex::bulk_build`]); the index must be
    /// freshly created and empty.
    fn bulk_build(&self, items: &[(Datum, RowId)]) -> StorageResult<TreeStats> {
        match self {
            PhysicalIndex::Trie(ix) => ix.bulk_build(text_items(items)?),
            PhysicalIndex::Suffix(ix) => ix.bulk_build(text_items(items)?),
            PhysicalIndex::KdTree(ix) => ix.bulk_build(point_items(items)?),
            PhysicalIndex::Quadtree(ix) => ix.bulk_build(point_items(items)?),
            PhysicalIndex::Pmr(ix) => ix.bulk_build(segment_items(items)?),
        }
    }

    /// Releases every page of the backing tree to the pager's free list
    /// (`DROP INDEX`).
    fn destroy(self) -> StorageResult<()> {
        match self {
            PhysicalIndex::Trie(ix) => ix.destroy(),
            PhysicalIndex::Suffix(ix) => ix.destroy(),
            PhysicalIndex::KdTree(ix) => ix.destroy(),
            PhysicalIndex::Quadtree(ix) => ix.destroy(),
            PhysicalIndex::Pmr(ix) => ix.destroy(),
        }
    }

    fn stats(&self) -> StorageResult<TreeStats> {
        match self {
            PhysicalIndex::Trie(ix) => ix.stats(),
            PhysicalIndex::Suffix(ix) => ix.stats(),
            PhysicalIndex::KdTree(ix) => ix.stats(),
            PhysicalIndex::Quadtree(ix) => ix.stats(),
            PhysicalIndex::Pmr(ix) => ix.stats(),
        }
    }

    /// The durable identity of this index: kind, configuration, tree meta
    /// page, owned-page list, and kind-specific extras (the PMR world
    /// rectangle, the suffix tree's logical word count).
    fn persisted(&self, name: &str) -> PersistedIndex {
        let no_world = Rect::new(0.0, 0.0, 0.0, 0.0);
        let (kind, world, strings) = match self {
            PhysicalIndex::Trie(_) => (KIND_TRIE, no_world, 0),
            PhysicalIndex::Suffix(ix) => (KIND_SUFFIX, no_world, SpIndex::len(ix)),
            PhysicalIndex::KdTree(_) => (KIND_KDTREE, no_world, 0),
            PhysicalIndex::Quadtree(_) => (KIND_PQUADTREE, no_world, 0),
            PhysicalIndex::Pmr(ix) => (KIND_PMR, ix.world(), 0),
        };
        let (config, meta_page, pages) = match self {
            PhysicalIndex::Trie(ix) => (ix.config(), SpIndex::meta_page(ix), ix.owned_pages()),
            PhysicalIndex::Suffix(ix) => (ix.config(), SpIndex::meta_page(ix), ix.owned_pages()),
            PhysicalIndex::KdTree(ix) => (ix.config(), SpIndex::meta_page(ix), ix.owned_pages()),
            PhysicalIndex::Quadtree(ix) => (ix.config(), SpIndex::meta_page(ix), ix.owned_pages()),
            PhysicalIndex::Pmr(ix) => (ix.config(), SpIndex::meta_page(ix), ix.owned_pages()),
        };
        PersistedIndex {
            name: name.to_string(),
            kind,
            config,
            world,
            meta_page,
            pages,
            strings,
        }
    }

    /// Reopens an index from its durable identity — the inverse of
    /// [`PhysicalIndex::persisted`].  The configuration (and, for the PMR
    /// quadtree, the world rectangle) round-trips, so the reopened index
    /// behaves identically to the never-closed one.
    fn reopen(pool: Arc<BufferPool>, pi: &PersistedIndex) -> StorageResult<(Self, IndexSpec)> {
        let pages = pi.pages.clone();
        Ok(match pi.kind {
            KIND_TRIE => (
                PhysicalIndex::Trie(TrieIndex::open_with_ops(
                    pool,
                    TrieOps::with_config(pi.config),
                    pi.meta_page,
                    pages,
                )?),
                IndexSpec::Trie,
            ),
            KIND_SUFFIX => (
                PhysicalIndex::Suffix(SuffixTreeIndex::open_with_ops(
                    pool,
                    TrieOps::with_config(pi.config),
                    pi.meta_page,
                    pages,
                    pi.strings,
                )?),
                IndexSpec::SuffixTree,
            ),
            KIND_KDTREE => (
                PhysicalIndex::KdTree(KdTreeIndex::open_with_ops(
                    pool,
                    KdTreeOps::with_config(pi.config),
                    pi.meta_page,
                    pages,
                )?),
                IndexSpec::KdTree,
            ),
            KIND_PQUADTREE => (
                PhysicalIndex::Quadtree(PointQuadtreeIndex::open_with_ops(
                    pool,
                    PointQuadtreeOps::with_config(pi.config),
                    pi.meta_page,
                    pages,
                )?),
                IndexSpec::PointQuadtree,
            ),
            KIND_PMR => (
                PhysicalIndex::Pmr(PmrQuadtreeIndex::open_with_ops(
                    pool,
                    PmrQuadtreeOps::with_config(pi.world, pi.config),
                    pi.meta_page,
                    pages,
                )?),
                IndexSpec::PmrQuadtree { world: pi.world },
            ),
            k => {
                return Err(StorageError::Corrupt(format!(
                    "catalog names unknown index kind {k}"
                )))
            }
        })
    }

    /// Streaming scan through this index for `predicate`, yielding matching
    /// row ids.  The planner only routes a predicate here when the index's
    /// operator class supports it, so a type mismatch is a planning bug.
    fn scan<'t>(
        &'t self,
        predicate: &Predicate,
    ) -> StorageResult<Box<dyn Iterator<Item = StorageResult<RowId>> + 't>> {
        fn rows<'t, K: 't>(
            cursor: spgist_indexes::Cursor<'t, K>,
        ) -> Box<dyn Iterator<Item = StorageResult<RowId>> + 't> {
            Box::new(cursor.map(|item| item.map(|(_, row)| row)))
        }
        match (self, predicate) {
            (PhysicalIndex::Trie(ix), Predicate::Str(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::Suffix(ix), Predicate::Str(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::KdTree(ix), Predicate::Point(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::Quadtree(ix), Predicate::Point(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::Pmr(ix), Predicate::Segment(q)) => Ok(rows(ix.cursor(q)?)),
            _ => Err(StorageError::Unsupported(
                "planner routed a predicate to an index of a different key type".into(),
            )),
        }
    }

    /// Ordered (distance) scan through this index for a `@@` predicate,
    /// yielding row ids in non-decreasing distance from the anchor, driven
    /// by the incremental NN search.  The planner only chooses an ordered
    /// scan for classes registering `@@`, so an index without distance
    /// support here is a planning bug.
    fn ordered_scan<'t>(
        &'t self,
        predicate: &Predicate,
    ) -> StorageResult<Box<dyn Iterator<Item = StorageResult<RowId>> + 't>> {
        fn rows<'t, K: 't>(
            cursor: Option<spgist_indexes::Cursor<'t, K>>,
        ) -> StorageResult<Box<dyn Iterator<Item = StorageResult<RowId>> + 't>> {
            match cursor {
                Some(cursor) => Ok(Box::new(cursor.map(|item| item.map(|(_, row)| row)))),
                None => Err(StorageError::Unsupported(
                    "planner chose an ordered scan on an index without distance support".into(),
                )),
            }
        }
        match (self, predicate) {
            (PhysicalIndex::Trie(ix), Predicate::Str(q)) => rows(ix.ordered_cursor(q)?),
            (PhysicalIndex::Suffix(ix), Predicate::Str(q)) => rows(ix.ordered_cursor(q)?),
            (PhysicalIndex::KdTree(ix), Predicate::Point(q)) => rows(ix.ordered_cursor(q)?),
            (PhysicalIndex::Quadtree(ix), Predicate::Point(q)) => rows(ix.ordered_cursor(q)?),
            (PhysicalIndex::Pmr(ix), Predicate::Segment(q)) => rows(ix.ordered_cursor(q)?),
            _ => Err(StorageError::Unsupported(
                "planner routed a predicate to an index of a different key type".into(),
            )),
        }
    }
}

/// Memoized planner statistics with an invalidation epoch: a write that
/// lands while a planner is mid-way through the slow `stats()` tree walk
/// bumps the epoch, so the stale result is returned to that one planner but
/// never cached.
#[derive(Default)]
struct StatsCache {
    epoch: u64,
    value: Option<(u64, u32)>,
}

struct NamedIndex {
    name: String,
    spec: IndexSpec,
    index: PhysicalIndex,
    /// Memoized planner statistics `(pages, page_height)`.  Deriving them
    /// from [`TreeStats`] walks the whole tree, so the result is cached
    /// until the next write invalidates it — planning a query must not cost
    /// more than running it.  A `Mutex` (not a `Cell`) so that concurrent
    /// planners and writers share the memo safely.
    cached_stats: Mutex<StatsCache>,
}

impl NamedIndex {
    fn planner_stats(&self) -> StorageResult<(u64, u32)> {
        let epoch = {
            let cache = self.cached_stats.lock();
            if let Some(cached) = cache.value {
                return Ok(cached);
            }
            cache.epoch
        };
        let stats = self.index.stats()?;
        let derived = (stats.pages, stats.max_page_height);
        let mut cache = self.cached_stats.lock();
        if cache.epoch == epoch {
            cache.value = Some(derived);
        }
        Ok(derived)
    }

    fn invalidate_stats(&self) {
        let mut cache = self.cached_stats.lock();
        cache.epoch += 1;
        cache.value = None;
    }
}

// ---------------------------------------------------------------------------
// Execution cursors
// ---------------------------------------------------------------------------

/// Where an [`ExecCursor`]'s rows actually come from — recorded at dispatch
/// time, so tests can prove the planner's chosen plan is the one executed.
/// Mirrors the shape of the [`AccessPath`] operator tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanSource {
    /// Heap sequential scan with a per-tuple predicate re-check.
    Heap,
    /// Scan through the named physical index.
    Index {
        /// Name of the index being scanned.
        name: String,
    },
    /// Ordered (nearest-neighbour) scan through the named physical index.
    OrderedIndex {
        /// Name of the index being scanned.
        name: String,
    },
    /// Residual filter over the input source.
    Filter {
        /// The driving source.
        input: Box<ScanSource>,
    },
    /// Intersection of several row-id streams.
    Intersect {
        /// The participating sources.
        inputs: Vec<ScanSource>,
    },
    /// Deduplicated union of several row-id streams.
    Union {
        /// The participating sources.
        inputs: Vec<ScanSource>,
    },
    /// `LIMIT` applied over the input source.
    Limit {
        /// The limited source.
        input: Box<ScanSource>,
    },
}

impl ScanSource {
    /// True if any node of this source tree scans the named index.
    pub fn scans_index(&self, index: &str) -> bool {
        match self {
            ScanSource::Heap => false,
            ScanSource::Index { name } | ScanSource::OrderedIndex { name } => name == index,
            ScanSource::Filter { input } | ScanSource::Limit { input } => input.scans_index(index),
            ScanSource::Intersect { inputs } | ScanSource::Union { inputs } => {
                inputs.iter().any(|s| s.scans_index(index))
            }
        }
    }
}

/// A streaming query result: `(row id, key datum)` pairs pulled lazily from
/// the chosen access path.
pub struct ExecCursor<'t> {
    path: AccessPath,
    source: ScanSource,
    inner: Box<dyn Iterator<Item = StorageResult<(RowId, Datum)>> + 't>,
}

impl ExecCursor<'_> {
    /// The access path the planner chose for this query.
    pub fn path(&self) -> &AccessPath {
        &self.path
    }

    /// The access path actually being scanned.
    pub fn source(&self) -> &ScanSource {
        &self.source
    }

    /// Drains the cursor into the row ids of every match.
    pub fn rows(self) -> StorageResult<Vec<RowId>> {
        self.map(|item| item.map(|(row, _)| row)).collect()
    }
}

impl Iterator for ExecCursor<'_> {
    type Item = StorageResult<(RowId, Datum)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl std::fmt::Debug for ExecCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCursor")
            .field("path", &self.path)
            .field("source", &self.source)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------------

/// Item type flowing between physical operators: a row id, plus the key
/// datum when an upstream operator already fetched it from the heap.
type RowStream<'t> = Box<dyn Iterator<Item = StorageResult<(RowId, Option<Datum>)>> + 't>;

/// Everything leaf planning needs, derived once per query.
struct PlanContext<'a> {
    catalog: &'a Catalog,
    stats: TableStats,
    available: Vec<AvailableIndex>,
}

/// The executable physical operator tree: the [`AccessPath`] shape plus the
/// actual predicate arguments each operator runs with.
#[derive(Debug, Clone)]
enum PhysNode {
    SeqScan {
        /// Predicate re-checked on every heap tuple.
        filter: Predicate,
        /// For ordered queries without an NN-capable index: the `@@` leaf
        /// whose anchor distance sorts the output.
        order: Option<Predicate>,
        cost: CostEstimate,
    },
    IndexScan {
        index: String,
        operator_class: String,
        leaf: Predicate,
        cost: CostEstimate,
    },
    OrderedScan {
        index: String,
        operator_class: String,
        leaf: Predicate,
        cost: CostEstimate,
    },
    Filter {
        input: Box<PhysNode>,
        residual: Vec<Predicate>,
        cost: CostEstimate,
    },
    Intersect {
        inputs: Vec<PhysNode>,
        cost: CostEstimate,
    },
    Union {
        inputs: Vec<PhysNode>,
        cost: CostEstimate,
    },
    Limit {
        input: Box<PhysNode>,
        k: usize,
    },
}

impl PhysNode {
    fn cost(&self) -> CostEstimate {
        match self {
            PhysNode::SeqScan { cost, .. }
            | PhysNode::IndexScan { cost, .. }
            | PhysNode::OrderedScan { cost, .. }
            | PhysNode::Filter { cost, .. }
            | PhysNode::Intersect { cost, .. }
            | PhysNode::Union { cost, .. } => *cost,
            PhysNode::Limit { input, .. } => input.cost(),
        }
    }

    fn total_cost(&self) -> f64 {
        self.cost().total_cost
    }

    fn uses_index(&self) -> bool {
        match self {
            PhysNode::SeqScan { .. } => false,
            PhysNode::IndexScan { .. } | PhysNode::OrderedScan { .. } => true,
            PhysNode::Filter { input, .. } | PhysNode::Limit { input, .. } => input.uses_index(),
            PhysNode::Intersect { inputs, .. } | PhysNode::Union { inputs, .. } => {
                inputs.iter().any(PhysNode::uses_index)
            }
        }
    }

    /// The planner-visible form of this plan (`EXPLAIN` output).
    fn access_path(&self) -> AccessPath {
        match self {
            PhysNode::SeqScan { cost, .. } => AccessPath::SeqScan { cost: *cost },
            PhysNode::IndexScan {
                index,
                operator_class,
                cost,
                ..
            } => AccessPath::IndexScan {
                index: index.clone(),
                operator_class: operator_class.clone(),
                cost: *cost,
            },
            PhysNode::OrderedScan {
                index,
                operator_class,
                cost,
                ..
            } => AccessPath::OrderedScan {
                index: index.clone(),
                operator_class: operator_class.clone(),
                cost: *cost,
            },
            PhysNode::Filter { input, cost, .. } => AccessPath::Filter {
                input: Box::new(input.access_path()),
                cost: *cost,
            },
            PhysNode::Intersect { inputs, cost } => AccessPath::Intersect {
                inputs: inputs.iter().map(PhysNode::access_path).collect(),
                cost: *cost,
            },
            PhysNode::Union { inputs, cost } => AccessPath::Union {
                inputs: inputs.iter().map(PhysNode::access_path).collect(),
                cost: *cost,
            },
            PhysNode::Limit { input, k } => AccessPath::Limit {
                input: Box::new(input.access_path()),
                k: *k,
            },
        }
    }
}

/// Cost of re-checking `residual_count` predicates against the input's
/// output rows.
fn filter_cost(
    input: &CostEstimate,
    stats: &TableStats,
    residual_count: usize,
    output_selectivity: f64,
) -> CostEstimate {
    let input_rows = stats.rows as f64 * input.selectivity;
    CostEstimate {
        selectivity: output_selectivity.min(input.selectivity),
        correlation: 0.0,
        startup_cost: input.startup_cost,
        total_cost: input.total_cost
            + input_rows * CPU_OPERATOR_COST * residual_count.max(1) as f64,
    }
}

/// Cost of intersecting several row-id streams: every non-driving input is
/// drained into a hash set before the driver streams through the membership
/// test, so their full costs land in the startup.
fn intersect_cost(inputs: &[PhysNode], stats: &TableStats) -> CostEstimate {
    let costs: Vec<CostEstimate> = inputs.iter().map(PhysNode::cost).collect();
    let selectivity = costs.iter().map(|c| c.selectivity).product();
    let hash_rows: f64 = costs
        .iter()
        .map(|c| stats.rows as f64 * c.selectivity)
        .sum();
    let total: f64 =
        costs.iter().map(|c| c.total_cost).sum::<f64>() + hash_rows * CPU_OPERATOR_COST;
    let driver_startup = costs.first().map_or(0.0, |c| c.startup_cost);
    let side_total: f64 = costs.iter().skip(1).map(|c| c.total_cost).sum();
    CostEstimate {
        selectivity,
        correlation: 0.0,
        startup_cost: driver_startup + side_total,
        total_cost: total,
    }
}

/// Cost of a deduplicated union of several row-id streams.
fn union_cost(inputs: &[PhysNode], stats: &TableStats) -> CostEstimate {
    let costs: Vec<CostEstimate> = inputs.iter().map(PhysNode::cost).collect();
    let selectivity = costs.iter().map(|c| c.selectivity).sum::<f64>().min(1.0);
    let dedup_rows: f64 = costs
        .iter()
        .map(|c| stats.rows as f64 * c.selectivity)
        .sum();
    CostEstimate {
        selectivity,
        correlation: 0.0,
        startup_cost: costs.first().map_or(0.0, |c| c.startup_cost),
        total_cost: costs.iter().map(|c| c.total_cost).sum::<f64>()
            + dedup_rows * CPU_OPERATOR_COST,
    }
}

/// Rejects predicate trees whose `@@` leaves the executor cannot give a
/// meaning to: an ordered leaf must be the whole query or a top-level
/// conjunct (the *constrained k-NN* shape); under `Or`/`Not` there is no
/// coherent output order.
fn validate_ordered(predicate: &Predicate) -> StorageResult<()> {
    let ok = match predicate {
        leaf if leaf.is_ordered_leaf() => true,
        Predicate::And(children) => {
            children
                .iter()
                .filter(|c| c.contains_ordered())
                .all(Predicate::is_ordered_leaf)
                && children.iter().filter(|c| c.is_ordered_leaf()).count() <= 1
        }
        other => !other.contains_ordered(),
    };
    if ok {
        Ok(())
    } else {
        Err(StorageError::Unsupported(
            "`@@` (nearest) must be the whole predicate or a single top-level conjunct; \
             it cannot appear under Or/Not or more than once"
                .into(),
        ))
    }
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

/// What changed in a table since the last checkpoint.  Every mutation path
/// updates this under the table latch (inside the DML lock), and the
/// checkpoint reads-and-resets it while holding the table's DML guard — so
/// the dirty set always agrees with the state being snapshotted.
#[derive(Default)]
struct TableDirty {
    /// Anything at all changed (rows, counters, heap growth, index DDL):
    /// the checkpoint must rewrite this table's metadata segment.  Clean
    /// tables (`false`) cost a checkpoint zero page writes.
    mutated: bool,
    /// Rewrite the whole row directory — a fresh table, or conservative
    /// recovery after a failed checkpoint left the on-disk chunks in doubt.
    all_rows: bool,
    /// Row-directory chunks touched since the last checkpoint
    /// (`row / ROWS_PER_CHUNK`), ignored while `all_rows` is set.
    row_chunks: BTreeSet<u64>,
}

impl TableDirty {
    /// Everything dirty: the state of a table that has never checkpointed.
    fn all() -> Self {
        TableDirty {
            mutated: true,
            all_rows: true,
            row_chunks: BTreeSet::new(),
        }
    }

    /// Records a mutation of one row-directory slot.
    fn mark_row(&mut self, row: RowId) {
        self.mutated = true;
        if !self.all_rows {
            self.row_chunks.insert(row / ROWS_PER_CHUNK);
        }
    }

    /// Records mutation of the row-directory slots `lo..hi` (half-open).
    fn mark_rows(&mut self, lo: RowId, hi: RowId) {
        self.mutated = true;
        if !self.all_rows && lo < hi {
            for chunk in (lo / ROWS_PER_CHUNK)..=((hi - 1) / ROWS_PER_CHUNK) {
                self.row_chunks.insert(chunk);
            }
        }
    }
}

/// The latched mutable state of a [`Table`]: the heap file, the row
/// directory, and the statistics that change with every write.
struct TableInner {
    heap: HeapFile,
    /// Row id → heap record (None once deleted).  Row ids are dense and
    /// assigned in insertion order, like the paper's heap tuple pointers.
    rows: Vec<Option<RecordId>>,
    live_rows: u64,
    /// Encoded key values seen on insert *this session*, for the planner's
    /// `distinct_values` statistic (deletions are not subtracted —
    /// statistics, not truth).  A bulk index build ([`Table::create_index`]
    /// on a populated table) re-seeds this set from its full heap scan, so
    /// right after a build the statistic is the *exact* live distinct count.
    distinct: HashSet<Vec<u8>>,
    /// Distinct-count seed restored from the durable catalog on reopen; the
    /// statistic reported is `distinct_base + distinct.len()`.  Values
    /// re-inserted after a reopen may double-count — again statistics, not
    /// truth.
    distinct_base: u64,
    /// Checkpoint dirty-tracking (see [`TableDirty`]).
    dirty: TableDirty,
}

/// A heap-backed table with one typed key column and any number of physical
/// indexes over it.
///
/// A `Table` is `Send + Sync`: share it behind an `Arc` and run DML and
/// queries from many threads.  The heap and row directory sit behind a
/// table-level reader-writer latch; each physical index is internally
/// concurrent (crabbing writers, epoch-pinned cursors).  An insert appends
/// to the heap under the table latch, releases it, then updates the indexes
/// — so a concurrent query sees either nothing (not yet indexed) or a fully
/// fetchable row, never a dangling index entry.  DDL
/// ([`Table::create_index`] / [`Table::drop_index`]) still requires `&mut`:
/// exclusive access, the analog of PostgreSQL's `AccessExclusiveLock`.
pub struct Table {
    name: String,
    key_type: KeyType,
    pool: Arc<BufferPool>,
    inner: RwLock<TableInner>,
    indexes: Vec<NamedIndex>,
    /// Serializes whole DML statements (heap change **and** the index
    /// updates that follow) — multi-index atomicity.  Without it, a delete
    /// racing an insert of the same row could run its index removals
    /// *between* the insert's heap append and index insert — the removal
    /// finds nothing, the insert then lands, and the index permanently
    /// names a dead row.  Only `insert`/`delete` take this lock, and they
    /// take it before any latch, so it adds no ordering cycle with readers
    /// (which run latch-free through the indexes and never touch it).
    dml: Mutex<()>,
    /// The database's write-ahead log, when this table belongs to a durable
    /// database.  DML **submits** its redo record while still holding the
    /// DML lock (so a checkpoint's log cut can never separate an applied
    /// statement from its record) and **waits** for durability after
    /// releasing it (so concurrent writers overlap their fsyncs — that wait
    /// is where group commit batches).
    wal: Option<Arc<Wal>>,
}

impl Table {
    /// Creates an empty table whose heap pages come from `pool`.
    pub fn create(name: &str, key_type: KeyType, pool: Arc<BufferPool>) -> StorageResult<Self> {
        Ok(Table {
            name: name.to_string(),
            key_type,
            inner: RwLock::new(TableInner {
                heap: HeapFile::create(Arc::clone(&pool))?,
                rows: Vec::new(),
                live_rows: 0,
                distinct: HashSet::new(),
                distinct_base: 0,
                // Never checkpointed: the first checkpoint writes everything.
                dirty: TableDirty::all(),
            }),
            pool,
            indexes: Vec::new(),
            dml: Mutex::new(()),
            wal: None,
        })
    }

    /// Reconstructs a table from its durable-catalog record: the heap file
    /// reopens from its persisted page directory, the row directory is
    /// restored verbatim (no rebuild scan), and every index reopens from its
    /// tree meta page and owned-page list.
    pub(crate) fn from_persisted(
        pool: Arc<BufferPool>,
        pt: &PersistedTable,
    ) -> StorageResult<Self> {
        let key_type = KeyType::from_tag(pt.key_type)?;
        let heap = HeapFile::open(Arc::clone(&pool), pt.heap_pages.clone(), pt.heap_records)?;
        let mut indexes = Vec::with_capacity(pt.indexes.len());
        for pi in &pt.indexes {
            let (index, spec) = PhysicalIndex::reopen(Arc::clone(&pool), pi)?;
            if spec.key_type() != key_type {
                return Err(StorageError::Corrupt(format!(
                    "catalog index {:?} ({}) does not match table {:?} of type {}",
                    pi.name,
                    spec.key_type().name(),
                    pt.name,
                    key_type.name()
                )));
            }
            indexes.push(NamedIndex {
                name: pi.name.clone(),
                spec,
                index,
                cached_stats: Mutex::new(StatsCache::default()),
            });
        }
        Ok(Table {
            name: pt.name.clone(),
            key_type,
            inner: RwLock::new(TableInner {
                heap,
                rows: pt.rows.clone(),
                live_rows: pt.live_rows,
                distinct: HashSet::new(),
                distinct_base: pt.distinct,
                // Reopened from a checkpoint image: clean until mutated.
                dirty: TableDirty::default(),
            }),
            pool,
            indexes,
            dml: Mutex::new(()),
            wal: None,
        })
    }

    /// Hooks this table up to the database's write-ahead log; DML from here
    /// on is logged before it is acknowledged.  Called once while the table
    /// is still exclusively owned (create, open-after-replay).
    pub(crate) fn attach_wal(&mut self, wal: Arc<Wal>) {
        self.wal = Some(wal);
    }

    /// Fails when the database's write-ahead log has been poisoned by an
    /// I/O failure.  At that point the in-memory state may be ahead of
    /// stable storage with no way to close the gap (the flusher is dead),
    /// so the table stops serving queries rather than hand out rows whose
    /// durability is unknown; DML is already rejected by `Wal::submit`.
    /// Reopening the database recovers to the acknowledged-durable state.
    fn check_wal_health(&self) -> StorageResult<()> {
        match &self.wal {
            Some(wal) => wal.health().map_err(|e| {
                StorageError::Io(std::io::Error::other(format!(
                    "database failed after a write-ahead log error \
                     (reopen to recover): {e}"
                )))
            }),
            None => Ok(()),
        }
    }

    /// Acquires this table's DML lock for an external critical section.
    /// The checkpoint protocol holds every table's guard across its whole
    /// snapshot-and-flush window, so no statement can be half-applied (a
    /// heap page without its index updates, half an index split) in the
    /// page images being flushed.
    pub(crate) fn dml_guard(&self) -> MutexGuard<'_, ()> {
        self.dml.lock()
    }

    /// Takes this table's checkpoint snapshot — the durable-catalog delta
    /// since the last checkpoint — and resets the dirty state, or returns
    /// `None` (and writes nothing) when the table is clean.  The caller
    /// (checkpoint) already holds this table's **DML lock** via
    /// [`Table::dml_guard`], so a concurrent insert or delete statement
    /// (heap change *plus* the index updates that follow) either lands
    /// wholly before the snapshot or wholly after it — a checkpoint racing
    /// DML through shared handles can never persist a row directory that
    /// disagrees with its indexes.  The heap state is read under the table
    /// latch (released before the index latches are touched, keeping lock
    /// orders acyclic with query paths).
    ///
    /// If the checkpoint later fails, the caller must put the dirtiness
    /// back with [`Table::mark_all_dirty`]: the on-disk chunks are then in
    /// doubt, and the conservative full rewrite restores the invariant.
    pub(crate) fn take_checkpoint_snapshot(&self) -> Option<TableSnapshot> {
        let (heap_pages, heap_records, live_rows, distinct, rows_len, rows) = {
            let mut inner = self.inner.write();
            if !inner.dirty.mutated {
                return None;
            }
            let dirty = std::mem::take(&mut inner.dirty);
            let rows_len = inner.rows.len() as u64;
            let rows = if dirty.all_rows {
                RowsDelta::Full(inner.rows.clone())
            } else {
                RowsDelta::Chunks(
                    dirty
                        .row_chunks
                        .iter()
                        .filter(|&&chunk| chunk * ROWS_PER_CHUNK < rows_len)
                        .map(|&chunk| {
                            let lo = (chunk * ROWS_PER_CHUNK) as usize;
                            let hi = (lo + ROWS_PER_CHUNK as usize).min(inner.rows.len());
                            (chunk, inner.rows[lo..hi].to_vec())
                        })
                        .collect(),
                )
            };
            (
                inner.heap.pages().to_vec(),
                inner.heap.record_count(),
                inner.live_rows,
                inner.distinct_base + inner.distinct.len() as u64,
                rows_len,
                rows,
            )
        };
        Some(TableSnapshot {
            name: self.name.clone(),
            key_type: self.key_type.tag(),
            heap_pages,
            heap_records,
            live_rows,
            distinct,
            rows_len,
            rows,
            indexes: self
                .indexes
                .iter()
                .map(|named| named.index.persisted(&named.name))
                .collect(),
        })
    }

    /// Marks every part of the table's durable record dirty, so the next
    /// checkpoint rewrites it wholesale.  Used when a failed checkpoint
    /// leaves the on-disk chunks in doubt, and by
    /// [`Database::checkpoint_full`] to measure the pre-incremental
    /// baseline.
    pub(crate) fn mark_all_dirty(&self) {
        self.inner.write().dirty = TableDirty::all();
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The key type of the table's indexed column.
    pub fn key_type(&self) -> KeyType {
        self.key_type
    }

    /// Number of live rows.
    pub fn len(&self) -> u64 {
        self.inner.read().live_rows
    }

    /// True if the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a key value, returning its row id.  The value is appended to
    /// the heap under the table latch, which is released before the value is
    /// inserted into the registered indexes (each crabs its own per-page
    /// latches internally).  The whole statement runs under the table's DML
    /// lock so a concurrent delete of the just-inserted row cannot
    /// interleave between the heap append and the index updates.
    pub fn insert(&self, datum: impl Into<Datum>) -> StorageResult<RowId> {
        let (row, lsn) = self.insert_logged(datum.into(), AUTOCOMMIT)?;
        if let (Some(wal), Some(lsn)) = (&self.wal, lsn) {
            wal.wait_durable(lsn)?;
        }
        Ok(row)
    }

    /// The apply-and-log half of an insert: executes the statement under the
    /// DML lock and submits its redo record tagged with `txn`, but does
    /// **not** wait for durability.  Auto-commit ([`Table::insert`]) waits on
    /// the returned LSN before acknowledging; a [`Transaction`] statement
    /// skips the wait entirely — its commit point is the `CommitTxn` record.
    pub(crate) fn insert_logged(
        &self,
        datum: Datum,
        txn: TxnId,
    ) -> StorageResult<(RowId, Option<Lsn>)> {
        if datum.key_type() != self.key_type {
            return Err(StorageError::Unsupported(format!(
                "cannot insert a {} value into table {:?} of type {}",
                datum.key_type().name(),
                self.name,
                self.key_type.name()
            )));
        }
        let record = datum.encode_record();
        let wal_datum = self.wal.as_ref().map(|_| record.clone());
        let dml = self.dml.lock();
        let row = {
            let mut inner = self.inner.write();
            let rid = inner.heap.insert(&record)?;
            let row = inner.rows.len() as RowId;
            inner.rows.push(Some(rid));
            inner.live_rows += 1;
            inner.distinct.insert(record);
            inner.dirty.mark_row(row);
            row
        };
        for named in &self.indexes {
            named.index.insert(&datum, row)?;
            named.invalidate_stats();
        }
        // Submit the redo record *inside* the DML lock (a checkpoint's log
        // cut must see statement-and-record as one unit), wait for the
        // fsync *outside* it (so concurrent writers' waits overlap and
        // group commit can batch them).
        let lsn = match &self.wal {
            Some(wal) => Some(wal.submit(&WalRecord::Insert {
                table: self.name.clone(),
                row,
                datum: wal_datum.expect("cloned when the wal is attached"),
                txn,
            })?),
            None => None,
        };
        drop(dml);
        Ok((row, lsn))
    }

    /// Inserts a batch of key values as **one DML statement**, returning the
    /// assigned row ids in input order.
    ///
    /// Unlike a loop of [`Table::insert`] calls, the whole batch takes the
    /// table's DML lock once, appends every value to the heap under one
    /// table-latch acquisition, and then hands each physical index the
    /// whole batch in one call ([`SpIndex::insert_batch`]) — one statement
    /// with respect to other DML, and one WAL record instead of many.  A
    /// concurrent *cursor* (which takes no lock) may observe part of the
    /// batch mid-flight; it never observes a dangling index entry.
    pub fn insert_many<I>(&self, data: I) -> StorageResult<Vec<RowId>>
    where
        I: IntoIterator,
        I::Item: Into<Datum>,
    {
        let data: Vec<Datum> = data.into_iter().map(Into::into).collect();
        let (rows, lsn) = self.insert_many_logged(data, AUTOCOMMIT)?;
        if let (Some(wal), Some(lsn)) = (&self.wal, lsn) {
            wal.wait_durable(lsn)?;
        }
        Ok(rows)
    }

    /// The apply-and-log half of [`Table::insert_many`] (see
    /// [`Table::insert_logged`] for the auto-commit/transaction split).
    pub(crate) fn insert_many_logged(
        &self,
        data: Vec<Datum>,
        txn: TxnId,
    ) -> StorageResult<(Vec<RowId>, Option<Lsn>)> {
        if let Some(bad) = data.iter().find(|d| d.key_type() != self.key_type) {
            return Err(StorageError::Unsupported(format!(
                "cannot insert a {} value into table {:?} of type {}",
                bad.key_type().name(),
                self.name,
                self.key_type.name()
            )));
        }
        if data.is_empty() {
            return Ok((Vec::new(), None));
        }
        let dml = self.dml.lock();
        let mut wal_datums: Vec<Vec<u8>> = Vec::new();
        let items: Vec<(Datum, RowId)> = {
            let mut inner = self.inner.write();
            let mut items = Vec::with_capacity(data.len());
            for datum in data {
                let record = datum.encode_record();
                let rid = inner.heap.insert(&record)?;
                let row = inner.rows.len() as RowId;
                inner.rows.push(Some(rid));
                inner.live_rows += 1;
                if self.wal.is_some() {
                    wal_datums.push(record.clone());
                }
                inner.distinct.insert(record);
                items.push((datum, row));
            }
            if let (Some(first), Some(last)) = (items.first(), items.last()) {
                inner.dirty.mark_rows(first.1, last.1 + 1);
            }
            items
        };
        for named in &self.indexes {
            named.index.insert_batch(&items)?;
            named.invalidate_stats();
        }
        // One redo record for the whole batch: recovery reproduces its
        // all-or-nothing visibility.  Submit under the DML lock, wait
        // outside it (see `insert`).
        let lsn = match &self.wal {
            Some(wal) => Some(wal.submit(&WalRecord::InsertMany {
                table: self.name.clone(),
                first_row: items[0].1,
                datums: wal_datums,
                txn,
            })?),
            None => None,
        };
        drop(dml);
        Ok((items.into_iter().map(|(_, row)| row).collect(), lsn))
    }

    /// Deletes the row, removing it from the heap and every index; returns
    /// whether the row existed.  A query racing the delete may still report
    /// the row (it was live when its cursor pinned the index) or skip it —
    /// never error.  Runs under the table's DML lock (see [`Table::insert`])
    /// so the heap removal and index removals are one atomic statement with
    /// respect to other DML.
    pub fn delete(&self, row: RowId) -> StorageResult<bool> {
        let (deleted, lsn) = self.delete_logged(row, AUTOCOMMIT)?;
        if let (Some(wal), Some(lsn)) = (&self.wal, lsn) {
            wal.wait_durable(lsn)?;
        }
        Ok(deleted.is_some())
    }

    /// The apply-and-log half of [`Table::delete`] (see
    /// [`Table::insert_logged`] for the auto-commit/transaction split).
    /// Returns the deleted datum — the information a transaction needs to
    /// undo the delete on abort — or `None` if the row did not exist.
    pub(crate) fn delete_logged(
        &self,
        row: RowId,
        txn: TxnId,
    ) -> StorageResult<(Option<Datum>, Option<Lsn>)> {
        let dml = self.dml.lock();
        let datum = {
            let mut inner = self.inner.write();
            let Some(slot) = inner.rows.get_mut(row as usize) else {
                return Ok((None, None));
            };
            let Some(rid) = slot.take() else {
                return Ok((None, None));
            };
            let datum = Datum::decode_record(&inner.heap.get(rid)?)?;
            inner.heap.delete(rid)?;
            inner.live_rows -= 1;
            inner.dirty.mark_row(row);
            datum
        };
        for named in &self.indexes {
            named.index.delete(&datum, row)?;
            named.invalidate_stats();
        }
        // Submit under the DML lock, wait outside it (see `insert`).
        let lsn = match &self.wal {
            Some(wal) => Some(wal.submit(&WalRecord::Delete {
                table: self.name.clone(),
                row,
                txn,
            })?),
            None => None,
        };
        drop(dml);
        Ok((Some(datum), lsn))
    }

    /// Re-executes a logged `INSERT` during recovery.  Row ids are assigned
    /// deterministically (`rows.len()`), which makes replay **idempotent
    /// and checkable**: a record whose row id is already past the row
    /// directory's end was not yet applied and replays exactly where the
    /// original landed; one below it is already reflected in the
    /// checkpoint image and is skipped; a gap means the log and the
    /// checkpoint disagree and recovery must stop rather than guess.
    pub(crate) fn replay_insert(&self, row: RowId, record: &[u8]) -> StorageResult<()> {
        let datum = Datum::decode_record(record)?;
        let _dml = self.dml.lock();
        let applied = {
            let mut inner = self.inner.write();
            let next = inner.rows.len() as RowId;
            if next > row {
                false
            } else if next < row {
                return Err(StorageError::Corrupt(format!(
                    "WAL replay gap on table {:?}: next row is {next} but the log says {row}",
                    self.name
                )));
            } else {
                let rid = inner.heap.insert(record)?;
                inner.rows.push(Some(rid));
                inner.live_rows += 1;
                inner.distinct.insert(record.to_vec());
                inner.dirty.mark_row(row);
                true
            }
        };
        if applied {
            for named in &self.indexes {
                named.index.insert(&datum, row)?;
                named.invalidate_stats();
            }
        }
        Ok(())
    }

    /// Re-executes a logged `insert_many` batch during recovery.  The batch
    /// was applied (and, if checkpointed, snapshotted) atomically under the
    /// DML lock, so it is either wholly in the checkpoint image or wholly
    /// missing — anything in between is corruption.
    pub(crate) fn replay_insert_many(
        &self,
        first_row: RowId,
        records: &[Vec<u8>],
    ) -> StorageResult<()> {
        if records.is_empty() {
            return Ok(());
        }
        let datums = records
            .iter()
            .map(|r| Datum::decode_record(r))
            .collect::<StorageResult<Vec<_>>>()?;
        let _dml = self.dml.lock();
        let items: Vec<(Datum, RowId)> = {
            let mut inner = self.inner.write();
            let next = inner.rows.len() as RowId;
            let end = first_row + records.len() as RowId;
            if next >= end {
                return Ok(()); // wholly inside the checkpoint image
            }
            if next != first_row {
                return Err(StorageError::Corrupt(format!(
                    "WAL replay gap on table {:?}: next row is {next} but the batch \
                     covers rows {first_row}..{end}",
                    self.name
                )));
            }
            let mut items = Vec::with_capacity(records.len());
            for (record, datum) in records.iter().zip(datums) {
                let rid = inner.heap.insert(record)?;
                let row = inner.rows.len() as RowId;
                inner.rows.push(Some(rid));
                inner.live_rows += 1;
                inner.distinct.insert(record.clone());
                items.push((datum, row));
            }
            if let (Some(first), Some(last)) = (items.first(), items.last()) {
                inner.dirty.mark_rows(first.1, last.1 + 1);
            }
            items
        };
        for named in &self.indexes {
            named.index.insert_batch(&items)?;
            named.invalidate_stats();
        }
        Ok(())
    }

    /// Rolls back one of a transaction's inserts: removes `row` from the
    /// heap and every index, **without logging**.  No compensation record is
    /// needed — if the process dies mid-abort, recovery reaches the same
    /// state by dropping the loser transaction's records.  The row-id slot
    /// stays allocated as a tombstone, so ids handed to later statements are
    /// unaffected (exactly the state recovery's loser-drop reproduces).
    pub(crate) fn undo_insert(&self, row: RowId) -> StorageResult<()> {
        let _dml = self.dml.lock();
        let datum = {
            let mut inner = self.inner.write();
            let Some(slot) = inner.rows.get_mut(row as usize) else {
                return Ok(());
            };
            let Some(rid) = slot.take() else {
                // Already gone: a concurrent statement deleted the
                // uncommitted row (statements are not isolated).
                return Ok(());
            };
            let datum = Datum::decode_record(&inner.heap.get(rid)?)?;
            inner.heap.delete(rid)?;
            inner.live_rows -= 1;
            inner.dirty.mark_row(row);
            datum
        };
        for named in &self.indexes {
            named.index.delete(&datum, row)?;
            named.invalidate_stats();
        }
        Ok(())
    }

    /// Rolls back one of a transaction's deletes: re-inserts the remembered
    /// `datum` at its original row id, unlogged (see [`Table::undo_insert`]).
    pub(crate) fn undo_delete(&self, row: RowId, datum: &Datum) -> StorageResult<()> {
        let record = datum.encode_record();
        let _dml = self.dml.lock();
        let reinserted = {
            let mut inner = self.inner.write();
            match inner.rows.get(row as usize) {
                Some(None) => {
                    let rid = inner.heap.insert(&record)?;
                    inner.rows[row as usize] = Some(rid);
                    inner.live_rows += 1;
                    inner.distinct.insert(record);
                    inner.dirty.mark_row(row);
                    true
                }
                // Live again or never allocated: another statement got
                // there first (statements are not isolated); leave it.
                _ => false,
            }
        };
        if reinserted {
            for named in &self.indexes {
                named.index.insert(datum, row)?;
                named.invalidate_stats();
            }
        }
        Ok(())
    }

    /// Replays a loser transaction's logged insert of `count` rows starting
    /// at `row`: the statement must not apply, but its row ids were consumed
    /// at execution time and every later record's ids count on them — so the
    /// slots are allocated *dead* (no heap record, no index entry, not
    /// live), exactly the state an explicit abort's undo leaves behind.
    pub(crate) fn replay_loser_insert(&self, row: RowId, count: u64) -> StorageResult<()> {
        let _dml = self.dml.lock();
        let mut inner = self.inner.write();
        let next = inner.rows.len() as RowId;
        let end = row + count;
        if next < row {
            return Err(StorageError::Corrupt(format!(
                "WAL replay gap on table {:?}: next row is {next} but a loser \
                 transaction's insert covers rows {row}..{end}",
                self.name
            )));
        }
        inner.dirty.mark_rows(next.max(row), end);
        for _ in next.max(row)..end {
            inner.rows.push(None);
        }
        Ok(())
    }

    /// Reads the key value of a live row; an error if the row is unknown or
    /// deleted.
    pub fn datum(&self, row: RowId) -> StorageResult<Datum> {
        self.try_datum(row)?
            .ok_or_else(|| StorageError::Unsupported(format!("row {row} does not exist")))
    }

    /// Reads the key value of a row, `None` if it does not exist (deleted or
    /// never inserted).  The execution paths use this so a row deleted
    /// between an index probe and the heap fetch is skipped, not an error.
    pub fn try_datum(&self, row: RowId) -> StorageResult<Option<Datum>> {
        self.try_datum_hinted(row, AccessHint::Normal)
    }

    /// [`Table::try_datum`] with an explicit buffer-pool [`AccessHint`].
    /// Row-at-a-time scan loops (the parallel seq scan, index builds) pass
    /// [`AccessHint::Scan`] so their one-touch heap pages stay out of the
    /// pool's protected set.
    pub fn try_datum_hinted(&self, row: RowId, hint: AccessHint) -> StorageResult<Option<Datum>> {
        let inner = self.inner.read();
        let Some(rid) = inner.rows.get(row as usize).copied().flatten() else {
            return Ok(None);
        };
        Datum::decode_record(&inner.heap.get_hinted(rid, hint)?).map(Some)
    }

    /// Builds a physical index described by `spec` over the existing heap
    /// rows (`CREATE INDEX`).  DDL: requires exclusive access to the table.
    ///
    /// On an already-populated table the build routes through one heap scan
    /// and [`SpIndex::bulk_build`] — the paper's `spgistbuild` pipeline —
    /// instead of N planner-visible inserts: every tree node is partitioned
    /// top-down and written exactly once.  The same scan seeds the planner's
    /// statistics with the **exact** live distinct-key count, replacing
    /// whatever session-local approximation had accumulated (first step on
    /// the planner-statistics roadmap item).
    pub fn create_index(&mut self, name: &str, spec: IndexSpec) -> StorageResult<()> {
        if spec.key_type() != self.key_type {
            return Err(StorageError::Unsupported(format!(
                "index {name:?} ({}) cannot serve table {:?} of type {}",
                spec.key_type().name(),
                self.name,
                self.key_type.name()
            )));
        }
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(StorageError::Unsupported(format!(
                "index {name:?} already exists on table {:?}",
                self.name
            )));
        }
        let pool = Arc::clone(&self.pool);
        let index = match spec {
            IndexSpec::Trie => PhysicalIndex::Trie(TrieIndex::create(pool)?),
            IndexSpec::SuffixTree => PhysicalIndex::Suffix(SuffixTreeIndex::create(pool)?),
            IndexSpec::KdTree => PhysicalIndex::KdTree(KdTreeIndex::create(pool)?),
            IndexSpec::PointQuadtree => PhysicalIndex::Quadtree(PointQuadtreeIndex::create(pool)?),
            IndexSpec::PmrQuadtree { world } => {
                PhysicalIndex::Pmr(PmrQuadtreeIndex::create(pool, world)?)
            }
        };
        let row_count = self.inner.read().rows.len() as RowId;
        let mut items: Vec<(Datum, RowId)> = Vec::new();
        for row in 0..row_count {
            // The build scan touches every heap page exactly once.
            if let Some(datum) = self.try_datum_hinted(row, AccessHint::Scan)? {
                items.push((datum, row));
            }
        }
        if !items.is_empty() {
            // Seed exact planner statistics from the build scan: the scan
            // already visits every live key, so the distinct count stops
            // being a session-local approximation.
            let distinct: HashSet<Vec<u8>> = items
                .iter()
                .map(|(datum, _)| datum.encode_record())
                .collect();
            {
                let mut inner = self.inner.write();
                inner.distinct = distinct;
                inner.distinct_base = 0;
            }
            index.bulk_build(&items)?;
        }
        self.indexes.push(NamedIndex {
            name: name.to_string(),
            spec,
            index,
            cached_stats: Mutex::new(StatsCache::default()),
        });
        self.inner.get_mut().dirty.mutated = true;
        Ok(())
    }

    /// Drops a physical index, releasing its pages to the pager's free list;
    /// returns whether it existed.  DDL: requires exclusive access.
    pub fn drop_index(&mut self, name: &str) -> StorageResult<bool> {
        let Some(named) = self.detach_index(name) else {
            return Ok(false);
        };
        named.index.destroy()?;
        Ok(true)
    }

    /// Removes an index from the table *without* destroying it, so the
    /// durable DDL path can persist the index-less catalog first and free
    /// the pages only once the catalog no longer names them (re-attached on
    /// checkpoint failure).
    fn detach_index(&mut self, name: &str) -> Option<NamedIndex> {
        let pos = self.indexes.iter().position(|i| i.name == name)?;
        self.inner.get_mut().dirty.mutated = true;
        Some(self.indexes.remove(pos))
    }

    fn attach_index(&mut self, named: NamedIndex) {
        self.inner.get_mut().dirty.mutated = true;
        self.indexes.push(named);
    }

    /// Destroys the table, releasing its heap pages and every index's pages
    /// to the pager's free list (`DROP TABLE`).
    pub fn destroy(self) -> StorageResult<()> {
        for named in self.indexes {
            named.index.destroy()?;
        }
        self.inner.into_inner().heap.destroy()
    }

    /// Names of the physical indexes on this table.
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|i| i.name.as_str()).collect()
    }

    /// Planner statistics of the heap (the `pg_class` analog).
    pub fn table_stats(&self) -> TableStats {
        let inner = self.inner.read();
        TableStats {
            rows: inner.live_rows,
            heap_pages: (inner.heap.page_count() as u64).max(1),
            distinct_values: inner.distinct_base + inner.distinct.len() as u64,
        }
    }

    /// The planner's view of the physical indexes, derived automatically
    /// from each index's measured [`TreeStats`] (memoized between writes).
    pub fn available_indexes(&self) -> StorageResult<Vec<AvailableIndex>> {
        self.indexes
            .iter()
            .map(|named| {
                let (pages, page_height) = named.planner_stats()?;
                Ok(AvailableIndex {
                    name: named.name.clone(),
                    operator_class: named.spec.operator_class().to_string(),
                    pages,
                    page_height,
                })
            })
            .collect()
    }

    /// Plans `query` against this table without executing it (`EXPLAIN`):
    /// boolean predicate trees decompose into index scans, residual filters,
    /// row-id intersections/unions; `@@` leaves route through ordered scans;
    /// a `LIMIT` is pushed down over the whole plan.
    pub fn plan(&self, catalog: &Catalog, query: impl Into<Query>) -> StorageResult<AccessPath> {
        Ok(self.plan_phys(catalog, &query.into())?.access_path())
    }

    /// Plans and executes `query`, returning a streaming cursor over the
    /// matching `(row id, key)` pairs.
    ///
    /// The dispatch is driven entirely by the planner's choice; every
    /// operator streams, so a `LIMIT` (or a caller that stops pulling)
    /// cuts the work short instead of materializing the full result, and
    /// results are identical across access paths (keys are always resolved
    /// through the heap).
    pub fn query<'t>(
        &'t self,
        catalog: &Catalog,
        query: impl Into<Query>,
    ) -> StorageResult<ExecCursor<'t>> {
        self.check_wal_health()?;
        let phys = self.plan_phys(catalog, &query.into())?;
        let path = phys.access_path();
        let (stream, source) = self.execute_node(&phys)?;
        let inner = stream
            .map(move |item| -> StorageResult<Option<(RowId, Datum)>> {
                let (row, datum) = item?;
                match datum {
                    Some(datum) => Ok(Some((row, datum))),
                    // A row deleted between the index probe and the heap
                    // fetch is skipped, not an error.
                    None => Ok(self.try_datum(row)?.map(|datum| (row, datum))),
                }
            })
            .filter_map(StorageResult::transpose);
        Ok(ExecCursor {
            path,
            source,
            inner: Box::new(inner),
        })
    }

    /// Plans and executes `query` with up to `n_threads` worker threads,
    /// materializing the matching `(row id, key)` pairs.
    ///
    /// Parallelism applies where the plan shape allows it and the cost
    /// model says the table is large enough to amortize thread startup
    /// ([`CostEstimate::parallel_seq_scan`]):
    ///
    /// * an unordered, un-`LIMIT`ed **sequential scan** partitions the
    ///   row-id range into contiguous chunks, one worker per chunk, and
    ///   concatenates the chunk results — deterministically equal to the
    ///   serial scan's row-id order (a limited scan stays serial: streaming
    ///   stops at `k`, a chunked scan cannot);
    /// * an un-`LIMIT`ed **intersection** evaluates every participating
    ///   input's row-id stream on its own worker, intersects the sets, and
    ///   reports rows in ascending row-id order (again deterministic).  A
    ///   limited intersection stays serial: the parallel set-build reports
    ///   the `k` lowest row ids, which is a valid but *different* subset
    ///   than the serial driver order.
    ///
    /// Everything else (ordered scans, unions, index-driven filters, small
    /// tables) falls back to the serial streaming path with identical
    /// results.
    pub fn query_parallel(
        &self,
        catalog: &Catalog,
        query: impl Into<Query>,
        n_threads: usize,
    ) -> StorageResult<Vec<(RowId, Datum)>> {
        self.check_wal_health()?;
        let query = query.into();
        let n_threads = n_threads.max(1);
        if n_threads > 1 {
            let phys = self.plan_phys(catalog, &query)?;
            let (node, limit) = match &phys {
                PhysNode::Limit { input, k } => (&**input, Some(*k)),
                node => (node, None),
            };
            match node {
                // A LIMIT-bearing seq scan stays serial: the streaming path
                // stops after `k` matches, while a chunked parallel scan
                // would filter the whole table before truncating.
                PhysNode::SeqScan {
                    filter,
                    order: None,
                    ..
                } if limit.is_none() && self.parallel_seq_scan_pays(n_threads) => {
                    return self.par_seq_scan(filter, n_threads);
                }
                // Like the seq scan, a LIMIT-bearing intersection stays
                // serial: truncating the parallel set-build's ascending
                // row-id order would return the k *lowest* row ids, a valid
                // but different subset than the serial driver produces.
                PhysNode::Intersect { inputs, cost }
                    if limit.is_none()
                        && CostEstimate::parallel_pays(
                            cost.total_cost,
                            n_threads.min(inputs.len()),
                        ) =>
                {
                    return self.par_intersect(inputs, &[], n_threads);
                }
                PhysNode::Filter {
                    input, residual, ..
                } if limit.is_none() => {
                    if let PhysNode::Intersect { inputs, cost } = &**input {
                        if CostEstimate::parallel_pays(cost.total_cost, n_threads.min(inputs.len()))
                        {
                            return self.par_intersect(inputs, residual, n_threads);
                        }
                    }
                }
                _ => {}
            }
        }
        self.query(catalog, query)?.collect()
    }

    /// Whether a parallel sequential scan over this table beats the serial
    /// one under the cost model.
    fn parallel_seq_scan_pays(&self, n_threads: usize) -> bool {
        let stats = self.table_stats();
        CostEstimate::parallel_seq_scan(&stats, n_threads).total_cost
            < CostEstimate::seq_scan(&stats).total_cost
    }

    /// Partitions the row-id range into contiguous chunks and filters each
    /// on its own scoped worker thread.  Chunk results concatenate in chunk
    /// order, so the output matches the serial scan exactly.
    fn par_seq_scan(
        &self,
        filter: &Predicate,
        n_threads: usize,
    ) -> StorageResult<Vec<(RowId, Datum)>> {
        let row_count = self.inner.read().rows.len();
        let workers = n_threads.min(row_count.max(1));
        let chunk = row_count.div_ceil(workers);
        let partials: Vec<StorageResult<Vec<(RowId, Datum)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = (lo + chunk).min(row_count);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for row in lo..hi {
                            let row = row as RowId;
                            // One-touch heap pages: scan-hinted so parallel
                            // workers do not flush the index working set.
                            if let Some(datum) = self.try_datum_hinted(row, AccessHint::Scan)? {
                                if filter.matches(&datum) {
                                    out.push((row, datum));
                                }
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel scan worker panicked"))
                .collect()
        });
        let mut rows = Vec::new();
        for part in partials {
            rows.extend(part?);
        }
        Ok(rows)
    }

    /// Evaluates every intersection input's row-id stream on its own scoped
    /// worker, intersects the sets, applies `residual` re-checks, and
    /// reports surviving rows in ascending row-id order.
    fn par_intersect(
        &self,
        inputs: &[PhysNode],
        residual: &[Predicate],
        n_threads: usize,
    ) -> StorageResult<Vec<(RowId, Datum)>> {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<StorageResult<HashSet<RowId>>>>> =
            inputs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..n_threads.min(inputs.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(node) = inputs.get(i) else { break };
                    let result = self.execute_node(node).and_then(|(stream, _)| {
                        let mut set = HashSet::new();
                        for item in stream {
                            set.insert(item?.0);
                        }
                        Ok(set)
                    });
                    *slots[i].lock() = Some(result);
                });
            }
        });
        let mut sets = Vec::with_capacity(inputs.len());
        for slot in slots {
            sets.push(slot.into_inner().expect("every input slot is filled")?);
        }
        // Intersect starting from the smallest set; sort for a
        // deterministic output order.
        sets.sort_by_key(HashSet::len);
        let (first, rest) = sets.split_first().expect("intersection of >= 2 inputs");
        let mut rows: Vec<RowId> = first
            .iter()
            .copied()
            .filter(|row| rest.iter().all(|set| set.contains(row)))
            .collect();
        rows.sort_unstable();
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            if let Some(datum) = self.try_datum(row)? {
                if residual.iter().all(|p| p.matches(&datum)) {
                    out.push((row, datum));
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Planning (logical predicate tree → physical operator tree)
    // ------------------------------------------------------------------

    /// Plans `query` into an executable physical operator tree.
    fn plan_phys(&self, catalog: &Catalog, query: &Query) -> StorageResult<PhysNode> {
        match query.predicate.key_type() {
            Some(kt) if kt != self.key_type => {
                return Err(StorageError::Unsupported(format!(
                    "predicate over {} cannot run on table {:?} of type {}",
                    kt.name(),
                    self.name,
                    self.key_type.name()
                )));
            }
            None if query.predicate.has_leaves() => {
                return Err(StorageError::Unsupported(
                    "predicate tree mixes key types".into(),
                ));
            }
            _ => {}
        }
        validate_ordered(&query.predicate)?;
        let ctx = PlanContext {
            catalog,
            stats: self.table_stats(),
            available: self.available_indexes()?,
        };
        let node = self.plan_node(&ctx, &query.predicate, query.limit)?;
        Ok(match query.limit {
            Some(k) => PhysNode::Limit {
                input: Box::new(node),
                k,
            },
            None => node,
        })
    }

    /// Recursively plans one predicate subtree.  `limit` is the pushed-down
    /// `LIMIT` when this subtree's output is the query's output (it caps
    /// ordered-scan cost estimates; execution is lazy regardless).
    fn plan_node(
        &self,
        ctx: &PlanContext<'_>,
        predicate: &Predicate,
        limit: Option<usize>,
    ) -> StorageResult<PhysNode> {
        match predicate {
            Predicate::And(children) => self.plan_and(ctx, predicate, children, limit),
            Predicate::Or(children) => self.plan_or(ctx, predicate, children),
            // Negation cannot enumerate its complement from an index.
            Predicate::Not(_) => Ok(self.seq_scan_node(ctx, predicate)),
            leaf => self.plan_leaf(ctx, leaf, limit),
        }
    }

    /// Plans a leaf predicate: the classic one-operator access-path choice,
    /// ordered (`@@`) leaves going through [`Planner::plan_ordered`].
    fn plan_leaf(
        &self,
        ctx: &PlanContext<'_>,
        leaf: &Predicate,
        limit: Option<usize>,
    ) -> StorageResult<PhysNode> {
        let qp = leaf.to_query_predicate().ok_or_else(|| {
            StorageError::Unsupported("composite predicate where a leaf was expected".into())
        })?;
        let planner = Planner::new(ctx.catalog);
        let path = if leaf.is_ordered_leaf() {
            planner.plan_ordered(&qp, &ctx.stats, &ctx.available, limit)
        } else {
            planner.plan(&qp, &ctx.stats, &ctx.available)
        };
        Ok(match path {
            AccessPath::IndexScan {
                index,
                operator_class,
                cost,
            } => PhysNode::IndexScan {
                index,
                operator_class,
                leaf: leaf.clone(),
                cost,
            },
            AccessPath::OrderedScan {
                index,
                operator_class,
                cost,
            } => PhysNode::OrderedScan {
                index,
                operator_class,
                leaf: leaf.clone(),
                cost,
            },
            _ => self.seq_scan_node(ctx, leaf),
        })
    }

    /// The always-available fallback: scan the heap, re-check `predicate` on
    /// every tuple — and, for ordered queries, sort by anchor distance
    /// before reporting (which is why the planner prices it with the
    /// scan-and-sort estimate).
    fn seq_scan_node(&self, ctx: &PlanContext<'_>, predicate: &Predicate) -> PhysNode {
        let order = predicate.ordered_driver().cloned();
        let cost = if order.is_some() {
            CostEstimate::seq_scan_sorted(&ctx.stats)
        } else {
            CostEstimate::seq_scan(&ctx.stats)
        };
        PhysNode::SeqScan {
            filter: predicate.clone(),
            order,
            cost,
        }
    }

    /// Plans a conjunction: pick a driving scan (the cheapest indexable
    /// conjunct — or the ordered scan when one conjunct is a `@@` leaf),
    /// apply the remaining conjuncts as a residual filter, and consider
    /// intersecting several index scans' row-id streams when more than one
    /// conjunct is indexable.  The sequential scan always competes.
    fn plan_and(
        &self,
        ctx: &PlanContext<'_>,
        whole: &Predicate,
        children: &[Predicate],
        limit: Option<usize>,
    ) -> StorageResult<PhysNode> {
        // Constrained k-NN: one `@@` conjunct drives an ordered scan, the
        // other conjuncts filter it (order survives filtering).
        if let Some(driver_idx) = children.iter().position(Predicate::is_ordered_leaf) {
            let residual: Vec<Predicate> = children
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != driver_idx)
                .map(|(_, c)| c.clone())
                .collect();
            // A residual that keeps only fraction `s` of rows means the
            // ordered scan must report roughly k/s rows before k survive —
            // cost the scan at that inflated limit, and keep the sorted
            // heap fallback in the running for unselective drivers.
            let residual_sel = Predicate::And(residual.clone())
                .estimate_selectivity(&ctx.stats)
                .max(1e-9);
            let effective_limit = limit.map(|k| ((k as f64 / residual_sel).ceil() as usize).max(k));
            let driver = self.plan_leaf(ctx, &children[driver_idx], effective_limit)?;
            if residual.is_empty() {
                return Ok(driver);
            }
            return Ok(match driver {
                ordered @ PhysNode::OrderedScan { .. } => {
                    let cost = filter_cost(
                        &ordered.cost(),
                        &ctx.stats,
                        residual.len(),
                        whole.estimate_selectivity(&ctx.stats),
                    );
                    let filtered = PhysNode::Filter {
                        input: Box::new(ordered),
                        residual,
                        cost,
                    };
                    let fallback = self.seq_scan_node(ctx, whole);
                    if filtered.total_cost() <= fallback.total_cost() {
                        filtered
                    } else {
                        fallback
                    }
                }
                // No ordered index: the sorted heap fallback filters inline.
                _ => self.seq_scan_node(ctx, whole),
            });
        }

        let seq = self.seq_scan_node(ctx, whole);
        let mut indexable: Vec<(usize, PhysNode)> = Vec::new();
        for (i, child) in children.iter().enumerate() {
            let node = self.plan_node(ctx, child, None)?;
            if node.uses_index() {
                indexable.push((i, node));
            }
        }
        if indexable.is_empty() {
            return Ok(seq);
        }

        let output_sel = whole.estimate_selectivity(&ctx.stats);
        // Strategy A — drive with the cheapest indexable conjunct, re-check
        // the rest against the fetched tuples.
        let (driver_idx, driver) = indexable
            .iter()
            .min_by(|(_, a), (_, b)| a.total_cost().total_cmp(&b.total_cost()))
            .map(|(i, n)| (*i, n.clone()))
            .expect("indexable is non-empty");
        let residual: Vec<Predicate> = children
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != driver_idx)
            .map(|(_, c)| c.clone())
            .collect();
        let filter_plan = if residual.is_empty() {
            driver
        } else {
            let cost = filter_cost(&driver.cost(), &ctx.stats, residual.len(), output_sel);
            PhysNode::Filter {
                input: Box::new(driver),
                residual,
                cost,
            }
        };

        // Strategy B — intersect every indexable conjunct's row-id stream,
        // then re-check only the non-indexable leftovers.
        let intersect_plan = (indexable.len() >= 2).then(|| {
            let member: HashSet<usize> = indexable.iter().map(|(i, _)| *i).collect();
            let inputs: Vec<PhysNode> = indexable.into_iter().map(|(_, n)| n).collect();
            let cost = intersect_cost(&inputs, &ctx.stats);
            let node = PhysNode::Intersect { inputs, cost };
            let residual: Vec<Predicate> = children
                .iter()
                .enumerate()
                .filter(|(i, _)| !member.contains(i))
                .map(|(_, c)| c.clone())
                .collect();
            if residual.is_empty() {
                node
            } else {
                let cost = filter_cost(&node.cost(), &ctx.stats, residual.len(), output_sel);
                PhysNode::Filter {
                    input: Box::new(node),
                    residual,
                    cost,
                }
            }
        });

        let mut best = seq;
        for candidate in [Some(filter_plan), intersect_plan].into_iter().flatten() {
            if candidate.total_cost() < best.total_cost() {
                best = candidate;
            }
        }
        Ok(best)
    }

    /// Plans a disjunction: a deduplicated union of the disjuncts' plans —
    /// unless any disjunct needs the heap anyway (then one sequential scan
    /// answers everything) or the union costs more than the scan.
    fn plan_or(
        &self,
        ctx: &PlanContext<'_>,
        whole: &Predicate,
        children: &[Predicate],
    ) -> StorageResult<PhysNode> {
        let seq = self.seq_scan_node(ctx, whole);
        let mut inputs = Vec::new();
        for child in children {
            let node = self.plan_node(ctx, child, None)?;
            if !node.uses_index() {
                return Ok(seq);
            }
            inputs.push(node);
        }
        if inputs.is_empty() {
            return Ok(seq);
        }
        let cost = union_cost(&inputs, &ctx.stats);
        let union = PhysNode::Union { inputs, cost };
        Ok(if union.total_cost() < seq.total_cost() {
            union
        } else {
            seq
        })
    }

    // ------------------------------------------------------------------
    // Execution (physical operator tree → streaming cursor)
    // ------------------------------------------------------------------

    fn named_index(&self, name: &str) -> StorageResult<&NamedIndex> {
        self.indexes.iter().find(|i| i.name == name).ok_or_else(|| {
            StorageError::Unsupported(format!("planner chose unknown index {name:?}"))
        })
    }

    /// Walks every live heap row lazily.  The row-id range is snapshotted at
    /// call time; each row is fetched under a short read latch, so rows
    /// deleted mid-scan are skipped and rows inserted mid-scan are unseen.
    fn heap_stream(&self) -> impl Iterator<Item = StorageResult<(RowId, Datum)>> + '_ {
        let row_count = self.inner.read().rows.len() as RowId;
        (0..row_count).filter_map(move |row| {
            // Serial seq scan: every heap page is one-touch traffic.
            self.try_datum_hinted(row, AccessHint::Scan)
                .map(|datum| datum.map(|datum| (row, datum)))
                .transpose()
        })
    }

    /// The [`ScanSource`] tree a physical operator dispatches to, derived
    /// from the plan shape (used where execution is lazy and the source
    /// must be known before every input has opened).
    fn scan_source(&self, node: &PhysNode) -> ScanSource {
        match node {
            PhysNode::SeqScan { .. } => ScanSource::Heap,
            PhysNode::IndexScan { index, .. } => ScanSource::Index {
                name: index.clone(),
            },
            PhysNode::OrderedScan { index, .. } => ScanSource::OrderedIndex {
                name: index.clone(),
            },
            PhysNode::Filter { input, .. } => ScanSource::Filter {
                input: Box::new(self.scan_source(input)),
            },
            PhysNode::Intersect { inputs, .. } => ScanSource::Intersect {
                inputs: inputs.iter().map(|n| self.scan_source(n)).collect(),
            },
            PhysNode::Union { inputs, .. } => ScanSource::Union {
                inputs: inputs.iter().map(|n| self.scan_source(n)).collect(),
            },
            PhysNode::Limit { input, .. } => ScanSource::Limit {
                input: Box::new(self.scan_source(input)),
            },
        }
    }

    /// Turns one physical operator into its row stream, recording the
    /// [`ScanSource`] tree actually dispatched to (which tests compare with
    /// the planned [`AccessPath`]).  Streams carry the key datum when the
    /// operator already fetched it, so downstream operators and the cursor
    /// never read the heap twice for one row.
    fn execute_node<'t>(&'t self, node: &PhysNode) -> StorageResult<(RowStream<'t>, ScanSource)> {
        match node {
            PhysNode::SeqScan { filter, order, .. } => {
                let filter = filter.clone();
                match order.clone() {
                    Some(order) => {
                        // Ordered fallback: nothing can stream before the
                        // full scan-and-sort (exactly what the cost model
                        // charges for).
                        let mut rows: Vec<(f64, RowId, Datum)> = Vec::new();
                        for item in self.heap_stream() {
                            let (row, datum) = item?;
                            if filter.matches(&datum) {
                                rows.push((order.distance(&datum), row, datum));
                            }
                        }
                        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
                        let inner = rows
                            .into_iter()
                            .map(|(_, row, datum)| Ok((row, Some(datum))));
                        Ok((Box::new(inner), ScanSource::Heap))
                    }
                    None => {
                        let inner = self.heap_stream().filter_map(move |item| match item {
                            Err(e) => Some(Err(e)),
                            Ok((row, datum)) if filter.matches(&datum) => {
                                Some(Ok((row, Some(datum))))
                            }
                            Ok(_) => None,
                        });
                        Ok((Box::new(inner), ScanSource::Heap))
                    }
                }
            }
            PhysNode::IndexScan { index, leaf, .. } => {
                let named = self.named_index(index)?;
                let rows = named.index.scan(leaf)?;
                Ok((
                    Box::new(rows.map(|item| item.map(|row| (row, None)))),
                    ScanSource::Index {
                        name: named.name.clone(),
                    },
                ))
            }
            PhysNode::OrderedScan { index, leaf, .. } => {
                let named = self.named_index(index)?;
                let rows = named.index.ordered_scan(leaf)?;
                Ok((
                    Box::new(rows.map(|item| item.map(|row| (row, None)))),
                    ScanSource::OrderedIndex {
                        name: named.name.clone(),
                    },
                ))
            }
            PhysNode::Filter {
                input, residual, ..
            } => {
                let (stream, source) = self.execute_node(input)?;
                let residual = residual.clone();
                let inner = stream
                    .map(
                        move |item| -> StorageResult<Option<(RowId, Option<Datum>)>> {
                            let (row, datum) = item?;
                            let datum = match datum {
                                Some(datum) => datum,
                                // Deleted while the scan ran: skip the row.
                                None => match self.try_datum(row)? {
                                    Some(datum) => datum,
                                    None => return Ok(None),
                                },
                            };
                            Ok(residual
                                .iter()
                                .all(|p| p.matches(&datum))
                                .then_some((row, Some(datum))))
                        },
                    )
                    .filter_map(StorageResult::transpose);
                Ok((
                    Box::new(inner),
                    ScanSource::Filter {
                        input: Box::new(source),
                    },
                ))
            }
            PhysNode::Intersect { inputs, .. } => {
                let mut nodes = inputs.iter();
                let first = nodes
                    .next()
                    .ok_or_else(|| StorageError::Unsupported("empty intersection plan".into()))?;
                // Materialize every non-driving row-id set (ids only — no
                // heap fetches) before opening the driver cursor.  Cursors
                // pin a reclamation epoch rather than a latch, so nothing
                // can deadlock here any more; draining and dropping each
                // input before the next opens still keeps at most one epoch
                // pinned at a time, so writers' retired pages reclaim
                // promptly even under long intersections.
                let mut sets: Vec<HashSet<RowId>> = Vec::new();
                let mut sources = Vec::with_capacity(inputs.len());
                for node in nodes {
                    let (stream, source) = self.execute_node(node)?;
                    sources.push(source);
                    let mut set = HashSet::new();
                    for item in stream {
                        set.insert(item?.0);
                    }
                    sets.push(set);
                }
                let (driver, driver_source) = self.execute_node(first)?;
                sources.insert(0, driver_source);
                let inner = driver.filter(move |item| match item {
                    Ok((row, _)) => sets.iter().all(|set| set.contains(row)),
                    Err(_) => true,
                });
                Ok((Box::new(inner), ScanSource::Intersect { inputs: sources }))
            }
            PhysNode::Union { inputs, .. } => {
                // Each input's cursor opens only when the previous one is
                // exhausted and dropped.  Cursors pin a reclamation epoch
                // rather than a latch, so opening several at once can no
                // longer deadlock against a writer — sequencing them is now
                // purely about keeping one epoch pinned at a time so
                // writers' retired pages reclaim promptly.
                // The dispatched sources are derived from the plan shape,
                // which is what execution follows by construction.
                let sources: Vec<ScanSource> =
                    inputs.iter().map(|node| self.scan_source(node)).collect();
                let mut pending = inputs.clone().into_iter();
                let mut current: Option<RowStream<'t>> = None;
                let chained = std::iter::from_fn(move || loop {
                    if let Some(stream) = current.as_mut() {
                        if let Some(item) = stream.next() {
                            return Some(item);
                        }
                        current = None; // epoch pin released before the next opens
                    }
                    let node = pending.next()?;
                    match self.execute_node(&node) {
                        Ok((stream, _)) => current = Some(stream),
                        Err(e) => return Some(Err(e)),
                    }
                })
                .map(|item| item.map(|(row, datum)| (datum, row)));
                // Deduplicated by row id while streaming (one disjunct's
                // rows may satisfy another disjunct too).
                let inner = spgist_indexes::Cursor::deduplicated(chained)
                    .map(|item| item.map(|(datum, row)| (row, datum)));
                Ok((Box::new(inner), ScanSource::Union { inputs: sources }))
            }
            PhysNode::Limit { input, k } => {
                let (stream, source) = self.execute_node(input)?;
                Ok((
                    Box::new(stream.take(*k)),
                    ScanSource::Limit {
                        input: Box::new(source),
                    },
                ))
            }
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("key_type", &self.key_type)
            .field("rows", &self.len())
            .field("indexes", &self.index_names())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

/// The top-level facade: a catalog, a shared buffer pool and named tables.
///
/// Tables live behind `Arc`s: [`Database::table_handle`] clones out a
/// `Send + Sync` handle for concurrent DML and queries on other threads,
/// while [`Database::table_mut`] grants the exclusive access DDL needs (and
/// fails while handles are outstanding).
///
/// ```
/// use spgist_catalog::exec::{Database, IndexSpec, KeyType, Predicate};
///
/// let mut db = Database::in_memory();
/// db.create_table("words", KeyType::Varchar).unwrap();
/// let table = db.table_mut("words").unwrap();
/// table.insert("space").unwrap();
/// table.insert("spade").unwrap();
/// table.create_index("words_trie", IndexSpec::Trie).unwrap();
/// let rows = db
///     .query("words", &Predicate::str_prefix("sp"))
///     .unwrap()
///     .rows()
///     .unwrap();
/// assert_eq!(rows.len(), 2);
/// ```
pub struct Database {
    catalog: Catalog,
    pool: Arc<BufferPool>,
    tables: BTreeMap<String, Arc<Table>>,
    /// On-disk layout of the chunked catalog (which pages hold the root,
    /// each table's metadata, and each row/heap chunk) when this database
    /// is durable (created with [`Database::create`] or
    /// [`Database::open`]); `None` for in-memory databases, whose DDL
    /// skips catalog persistence.
    layout: Option<CatalogLayout>,
    /// Running checkpoint counters (chunks written/skipped, bytes, quiesce
    /// time) — the incremental-checkpoint analog of the pool's `IoStats`.
    ckpt_stats: CheckpointStats,
    /// The write-ahead log of a durable database.  Every acknowledged DML
    /// statement has its redo record fsynced here before the call returns;
    /// [`Database::open`] replays records past the catalog's checkpoint
    /// LSN, so acknowledged writes survive a crash — even dropping the
    /// database without [`Database::close`] loses nothing acknowledged.
    wal: Option<Arc<Wal>>,
    /// Checkpoint pre-image journal path of a durable database
    /// (`<wal prefix>.ckpt`).  [`Database::checkpoint`] journals the
    /// on-disk image of every page it is about to overwrite before the
    /// first in-place write; [`Database::open`] rolls a surviving journal
    /// back, so a crash anywhere inside a checkpoint recovers the exact
    /// previous checkpoint plus the still-un-pruned log.
    journal: Option<PathBuf>,
    /// Next transaction id to hand out.  Seeded past the largest id
    /// surviving in the log at open, so a new transaction can never collide
    /// with records of an older incarnation still awaiting pruning (a
    /// collision would let an old `CommitTxn` adopt a new loser's
    /// statements during a later replay).
    next_txn: AtomicU64,
    /// Number of open [`Transaction`] handles.  The checkpoint protocol
    /// refuses to run while this is nonzero: the pool is no-steal, and a
    /// checkpoint taken mid-transaction would flush uncommitted work into
    /// the data file *and* cut the log below the records recovery needs to
    /// drop it.  In safe code the borrow checker already forbids the
    /// combination (`begin` borrows the database shared, `checkpoint` needs
    /// it exclusively); the counter keeps the invariant enforced for
    /// test-only escape hatches like [`Transaction::crash_for_test`].
    open_txns: AtomicU64,
}

/// WAL segment file prefix for the database at `path`: segments are
/// `<path>.wal.<seq>` siblings of the database file.
fn wal_prefix(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// Checkpoint pre-image journal path for the log at `wal_path`:
/// `<wal_path>.ckpt`, a sibling of the segments (the non-numeric suffix
/// keeps it out of the segment scan).
fn journal_path(wal_path: &Path) -> PathBuf {
    let mut os = wal_path.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

impl Database {
    /// A database on an in-memory buffer pool with the paper's catalog
    /// registrations.
    pub fn in_memory() -> Self {
        Self::with_pool(BufferPool::in_memory())
    }

    /// [`Database::in_memory`] with an explicit buffer-pool configuration —
    /// the in-memory counterpart of [`Database::create_with_config`].
    ///
    /// A bounded capacity makes eviction observable at in-memory speeds, so
    /// an eviction-bounded bulk build (a `CREATE INDEX` whose working set
    /// exceeds the pool) can be demonstrated without a file.
    pub fn in_memory_with_config(config: BufferPoolConfig) -> Self {
        Self::with_pool(Arc::new(BufferPool::new(Arc::new(MemPager::new()), config)))
    }

    /// A database over an explicit buffer pool (e.g. file-backed).  The
    /// database is *not* durable — its catalog lives only in memory; use
    /// [`Database::create`] / [`Database::open`] for a reopenable database.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Database {
            catalog: Catalog::with_paper_defaults(),
            pool,
            tables: BTreeMap::new(),
            layout: None,
            wal: None,
            journal: None,
            next_txn: AtomicU64::new(1),
            open_txns: AtomicU64::new(0),
            ckpt_stats: CheckpointStats::default(),
        }
    }

    /// Creates a durable database in a fresh file at `path`, with a
    /// write-ahead log in `<path>.wal.*` siblings.  The catalog meta-table
    /// is rooted at the file's first logical page and written through on
    /// every DDL statement; every acknowledged DML statement is fsynced to
    /// the log before its call returns, so a reopen after a crash recovers
    /// it (see [`Database::open`]).
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        Self::create_with_config(path, BufferPoolConfig::default())
    }

    /// [`Database::create`] with an explicit buffer-pool configuration.
    ///
    /// Refuses to overwrite an existing file: creating where a database
    /// already lives would silently destroy it — open it with
    /// [`Database::open`] or delete the file first.
    pub fn create_with_config<P: AsRef<Path>>(
        path: P,
        config: BufferPoolConfig,
    ) -> StorageResult<Self> {
        Self::create_with_wal_config(path, config, WalConfig::default())
    }

    /// [`Database::create_with_config`] with an explicit WAL configuration
    /// (group-commit window, batch bound, segment size) — the knobs the
    /// commit-throughput experiments turn.
    pub fn create_with_wal_config<P: AsRef<Path>>(
        path: P,
        config: BufferPoolConfig,
        wal_config: WalConfig,
    ) -> StorageResult<Self> {
        let path = path.as_ref();
        if path.exists() {
            return Err(StorageError::Unsupported(format!(
                "refusing to create database over existing file {path:?}; \
                 open it with Database::open or remove it first"
            )));
        }
        let pager = Arc::new(FilePager::create(path)?);
        Self::create_with_pager(pager, wal_prefix(path), config, wal_config)
    }

    /// Creates a durable database over an arbitrary pager — the hook the
    /// crash-recovery suites use to interpose a fault-injection pager
    /// (`spgist_storage::FaultPager`) between the executor and the file.
    /// WAL segments are created at `<wal_path>.<seq>`; the log always
    /// writes its own files directly (its fsyncs are the commit point and
    /// cannot go through a pager that might lie about them).
    pub fn create_with_pager(
        pager: Arc<dyn spgist_storage::Pager>,
        wal_path: impl AsRef<Path>,
        config: BufferPoolConfig,
        wal_config: WalConfig,
    ) -> StorageResult<Self> {
        // Durable databases run the pool in no-steal mode: between
        // checkpoints no data page reaches the file, so after a crash the
        // file holds exactly the state the log's replay starts from.
        let config = BufferPoolConfig {
            steal: false,
            ..config
        };
        // A stale journal from a previous database at this path must be
        // deleted, not rolled back: it holds that database's pages, and
        // the file underneath is fresh.
        let journal = journal_path(wal_path.as_ref());
        journal::discard(&journal)?;
        let pool = Arc::new(BufferPool::new(pager, config));
        let root = pool.allocate_page()?;
        if root != durable::CATALOG_ROOT {
            return Err(StorageError::Corrupt(format!(
                "fresh database file allocated page {root} first, expected the catalog root"
            )));
        }
        let wal = Arc::new(Wal::create(wal_path, wal_config)?);
        let mut db = Database {
            catalog: Catalog::with_paper_defaults(),
            pool,
            tables: BTreeMap::new(),
            layout: Some(CatalogLayout::new_at_root(root)),
            wal: Some(wal),
            journal: Some(journal),
            next_txn: AtomicU64::new(1),
            open_txns: AtomicU64::new(0),
            ckpt_stats: CheckpointStats::default(),
        };
        db.checkpoint()?;
        Ok(db)
    }

    /// Opens a previously created database file, restoring **all** tables
    /// and indexes from the durable catalog with zero rebuild scans — and
    /// then replaying the write-ahead log past the catalog's checkpoint
    /// LSN, so every statement that was acknowledged before a crash (or an
    /// unclosed drop) is back, exactly once.
    ///
    /// Fails with [`StorageError::Corrupt`] when the file is not a database
    /// file, was written by an incompatible version, or is torn past what
    /// crash recovery can explain (a torn *tail* on the last log segment is
    /// normal — that record was never acknowledged — but damage below the
    /// durable horizon is not); a corrupt database is never silently
    /// misread into wrong rows.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        Self::open_with_config(path, BufferPoolConfig::default())
    }

    /// [`Database::open`] with an explicit buffer-pool configuration.
    pub fn open_with_config<P: AsRef<Path>>(
        path: P,
        config: BufferPoolConfig,
    ) -> StorageResult<Self> {
        Self::open_with_wal_config(path, config, WalConfig::default())
    }

    /// [`Database::open_with_config`] with an explicit WAL configuration.
    pub fn open_with_wal_config<P: AsRef<Path>>(
        path: P,
        config: BufferPoolConfig,
        wal_config: WalConfig,
    ) -> StorageResult<Self> {
        let path = path.as_ref();
        let pager = Arc::new(FilePager::open(path)?);
        Self::open_with_pager(pager, wal_prefix(path), config, wal_config)
    }

    /// Opens a durable database over an arbitrary pager (the
    /// fault-injection counterpart of [`Database::create_with_pager`]).
    pub fn open_with_pager(
        pager: Arc<dyn spgist_storage::Pager>,
        wal_path: impl AsRef<Path>,
        config: BufferPoolConfig,
        wal_config: WalConfig,
    ) -> StorageResult<Self> {
        let config = BufferPoolConfig {
            steal: false,
            ..config
        };
        // A surviving checkpoint journal means the last checkpoint may be
        // torn — an arbitrary subset of its in-place page writes may have
        // hit the platter.  Roll every journaled pre-image back *before*
        // reading the catalog: that restores the exact previous checkpoint
        // image, and the log (un-pruned — pruning happens after the
        // journal is deleted) replays everything acknowledged since.
        let journal = journal_path(wal_path.as_ref());
        journal::recover(&journal, pager.as_ref())?;
        let pool = Arc::new(BufferPool::new(pager, config));
        let (persisted, layout) = durable::read_catalog(&pool)?;
        let mut tables = BTreeMap::new();
        for pt in &persisted.tables {
            let table = Table::from_persisted(Arc::clone(&pool), pt).map_err(|e| {
                StorageError::Corrupt(format!("table {:?} does not reopen: {e}", pt.name))
            })?;
            tables.insert(pt.name.clone(), Arc::new(table));
        }
        let (wal, records) = Wal::open(wal_path, wal_config, persisted.checkpoint_lsn)?;
        let wal = Arc::new(wal);
        // Pass 1 over the surviving records: which transactions have a
        // durable `CommitTxn`?  Everything else is a *loser* — the crash
        // (or an explicit abort) got there before the commit point — and
        // none of its statements may apply.  Pass 2 below still walks the
        // records in LSN order, because row ids were assigned in execution
        // order across transactions; a loser's inserts are replayed as dead
        // row-directory slots so every later record's ids line up.
        let winners: HashSet<TxnId> = records
            .iter()
            .filter_map(|(_, record)| match record {
                WalRecord::CommitTxn { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let max_txn = records
            .iter()
            .map(|(_, record)| record.txn())
            .max()
            .unwrap_or(AUTOCOMMIT);
        let mut db = Database {
            catalog: Catalog::with_paper_defaults(),
            pool,
            tables,
            layout: Some(layout),
            // Replay runs with the log detached so the re-executed
            // statements are not logged again.
            wal: None,
            journal: Some(journal),
            next_txn: AtomicU64::new(max_txn + 1),
            open_txns: AtomicU64::new(0),
            ckpt_stats: CheckpointStats::default(),
        };
        let replayed = records.len();
        for (lsn, record) in records {
            db.replay_record(record, &winners).map_err(|e| {
                StorageError::Corrupt(format!("WAL replay failed at lsn {lsn}: {e}"))
            })?;
        }
        db.wal = Some(Arc::clone(&wal));
        for table in db.tables.values_mut() {
            Arc::get_mut(table)
                .expect("tables are exclusively owned during open")
                .attach_wal(Arc::clone(&wal));
        }
        if replayed > 0 {
            // Fold the replayed tail into a fresh checkpoint so the log
            // shrinks instead of being replayed again (and again) across
            // reopens.
            db.checkpoint()?;
        }
        Ok(db)
    }

    /// Applies one recovered redo record.  Each case is idempotent against
    /// the checkpoint image (the log cut can overlap it — see
    /// [`Database::checkpoint`]): DML verifies row-id positions, DDL checks
    /// existence before re-executing.
    ///
    /// `winners` is the set of transactions whose `CommitTxn` survived in
    /// the log.  A DML record of any other transaction is a *loser*: its
    /// insert only allocates dead row-id slots (keeping later ids aligned)
    /// and its delete is skipped outright — none of its changes, and no
    /// index entries, reach the recovered state.
    fn replay_record(&mut self, record: WalRecord, winners: &HashSet<TxnId>) -> StorageResult<()> {
        let missing = |table: &str| {
            StorageError::Corrupt(format!("WAL record names unknown table {table:?}"))
        };
        let committed = |txn: TxnId| txn == AUTOCOMMIT || winners.contains(&txn);
        match record {
            WalRecord::Insert {
                table,
                row,
                datum,
                txn,
            } => {
                let t = self.tables.get(&table).ok_or_else(|| missing(&table))?;
                if committed(txn) {
                    t.replay_insert(row, &datum)
                } else {
                    t.replay_loser_insert(row, 1)
                }
            }
            WalRecord::InsertMany {
                table,
                first_row,
                datums,
                txn,
            } => {
                let t = self.tables.get(&table).ok_or_else(|| missing(&table))?;
                if committed(txn) {
                    t.replay_insert_many(first_row, &datums)
                } else {
                    t.replay_loser_insert(first_row, datums.len() as u64)
                }
            }
            WalRecord::Delete { table, row, txn } => {
                let t = self.tables.get(&table).ok_or_else(|| missing(&table))?;
                if committed(txn) {
                    t.delete(row).map(|_| ())
                } else {
                    // A loser's delete never happened: the row stays (the
                    // live abort path restored it via undo before the
                    // crash, or the crash itself pre-empted the delete's
                    // commit).
                    Ok(())
                }
            }
            // Transaction control records carry no state of their own;
            // their effect is the winner/loser split computed in pass 1.
            WalRecord::BeginTxn { .. }
            | WalRecord::CommitTxn { .. }
            | WalRecord::AbortTxn { .. } => Ok(()),
            WalRecord::CreateTable { table, key_type } => {
                if self.tables.contains_key(&table) {
                    return Ok(()); // already in the checkpoint image
                }
                let t =
                    Table::create(&table, KeyType::from_tag(key_type)?, Arc::clone(&self.pool))?;
                self.tables.insert(table, Arc::new(t));
                Ok(())
            }
            WalRecord::DropTable { table } => {
                let Some(t) = self.tables.remove(&table) else {
                    return Ok(());
                };
                Arc::try_unwrap(t)
                    .expect("tables are exclusively owned during replay")
                    .destroy()
            }
            WalRecord::CreateIndex { table, index, spec } => {
                let spec = IndexSpec::decode_spec(&spec)?;
                let t = self.tables.get_mut(&table).ok_or_else(|| missing(&table))?;
                let t = Arc::get_mut(t).expect("tables are exclusively owned during replay");
                if t.indexes.iter().any(|i| i.name == index) {
                    return Ok(());
                }
                t.create_index(&index, spec)
            }
            WalRecord::DropIndex { table, index } => {
                let t = self.tables.get_mut(&table).ok_or_else(|| missing(&table))?;
                Arc::get_mut(t)
                    .expect("tables are exclusively owned during replay")
                    .drop_index(&index)
                    .map(|_| ())
            }
        }
    }

    /// True when this database persists its catalog to a file (created with
    /// [`Database::create`] / [`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.layout.is_some()
    }

    /// Persists the catalog delta since the last checkpoint — mutated
    /// tables' metadata and dirty row/heap chunks; an untouched table costs
    /// zero page writes — flushes the dirty data pages to stable storage,
    /// and **truncates the write-ahead log** up to the checkpoint.  A no-op
    /// for in-memory databases.
    ///
    /// The protocol (same shape as the pre-v3 full rewrite, with the write
    /// sets shrunk to what changed):
    ///
    /// 1. **Quiesce.**  Every table's DML lock is taken, but only for the
    ///    *in-memory* part of the checkpoint: the log cut, the per-table
    ///    dirty-chunk snapshots, and a memcpy of the dirty data pages.  No
    ///    statement can be half-applied (a heap page without its index
    ///    updates, half an index split) in the images being snapshotted.
    ///    The guards drop before any disk I/O — writers stall for the
    ///    snapshot, not for the fsyncs.
    /// 2. **Rotate.**  The log is rotated; `cut` = everything appended so
    ///    far becomes durable and sealed, and (thanks to step 1) every
    ///    record below the cut is fully reflected in the snapshots.
    /// 3. **Journal.**  The current *on-disk* image of every page about to
    ///    be overwritten in place (the snapshotted data pages + the catalog
    ///    pages the delta reuses) is written to the pre-image journal
    ///    (`<wal prefix>.ckpt`) and synced.  From here until step 6 a crash
    ///    recovers by rolling the journal back — restoring the exact
    ///    previous checkpoint — and replaying the un-pruned log.  Reading
    ///    pre-images from the pager after the guards dropped is sound: the
    ///    pool is no-steal, so nothing reaches the file between step 4 of
    ///    the previous checkpoint and step 4 of this one.
    /// 4. **Flush data, sync.**  The *snapshot* images are written and
    ///    synced — not the live frames, which concurrent DML may already
    ///    have advanced past the log cut (their referenced pages would not
    ///    be flushed, tearing the checkpoint).  A frame re-dirtied since
    ///    the snapshot keeps its dirty flag and ships with the next
    ///    checkpoint.  Data lands *before* any catalog write, so a torn
    ///    crash can never persist a catalog that claims `checkpoint_lsn =
    ///    cut` over data pages that do not reflect it.
    /// 5. **Write catalog delta, sync.**  Dirty chunks are rewritten in
    ///    place (relocated only when a segment grows), mutated tables'
    ///    metadata and the root are rewritten, and exactly those pages are
    ///    flushed.
    /// 6. **Commit.**  The journal is deleted — the checkpoint is now the
    ///    recovery point.  Only then are deferred page frees published
    ///    (rollback would re-expose their contents) and sealed log
    ///    segments below the cut pruned.
    ///
    /// A crash anywhere before step 6 recovers from the previous
    /// checkpoint plus the un-pruned log: nothing acknowledged is lost,
    /// checkpointing is *purely* a log-truncation (and reopen-speed)
    /// optimization.  [`Database::checkpoint_stats`] reports what each
    /// checkpoint wrote and skipped.
    pub fn checkpoint(&mut self) -> StorageResult<()> {
        // No-steal quiesce: uncommitted transactional work must never reach
        // the data file.  `&mut self` already guarantees no `Transaction`
        // borrow is live; this guard catches the test-only crash-simulation
        // escape hatch, which leaks its registration on purpose.
        let open = self.open_txns.load(Ordering::SeqCst) as usize;
        if open != 0 {
            return Err(StorageError::OpenTransactions(open));
        }
        if self.layout.is_none() {
            return Ok(());
        }

        // Steps 1-2: the quiesce window — log cut and in-memory snapshots
        // under every table's DML guard, no disk I/O.
        let quiesce_start = std::time::Instant::now();
        let guards: Vec<MutexGuard<'_, ()>> = self.tables.values().map(|t| t.dml_guard()).collect();
        let checkpoint_lsn = match &self.wal {
            Some(wal) => wal.rotate()?,
            None => 0,
        };
        let mut snaps: Vec<TableSnapshot> = Vec::new();
        let mut tables_skipped = 0u64;
        for table in self.tables.values() {
            match table.take_checkpoint_snapshot() {
                Some(snap) => snaps.push(snap),
                None => tables_skipped += 1,
            }
        }
        let data = self.pool.dirty_snapshot();
        drop(guards);
        let quiesce_nanos = quiesce_start.elapsed().as_nanos() as u64;

        match self.checkpoint_persist(&snaps, &data, checkpoint_lsn) {
            Ok((outcome, journal_bytes)) => {
                let stats = &mut self.ckpt_stats;
                stats.checkpoints += 1;
                stats.chunks_written += outcome.chunks_written;
                stats.chunks_skipped += outcome.chunks_skipped;
                stats.tables_skipped += tables_skipped;
                stats.catalog_bytes += outcome.bytes_written;
                stats.data_pages_flushed += data.len() as u64;
                stats.journal_bytes += journal_bytes;
                stats.quiesce_nanos += quiesce_nanos;
                Ok(())
            }
            Err(e) => {
                // The snapshots were consumed but the disk state is now in
                // doubt; make the next checkpoint rewrite the snapshotted
                // tables wholesale.  The journal survives with the original
                // pre-images (its old-wins merge keeps them across a
                // retry), so rollback still restores the last commit point.
                for snap in &snaps {
                    if let Some(table) = self.tables.get(&snap.name) {
                        table.mark_all_dirty();
                    }
                }
                Err(e)
            }
        }
    }

    /// Steps 3-6 of [`Database::checkpoint`]: journal → flush data → write
    /// catalog delta → flush catalog → delete journal → publish frees,
    /// prune log.  Runs after the quiesce guards have dropped.
    fn checkpoint_persist(
        &mut self,
        snaps: &[TableSnapshot],
        data: &spgist_storage::DirtyPageSnapshot,
        checkpoint_lsn: u64,
    ) -> StorageResult<(durable::CatalogWriteOutcome, u64)> {
        let layout = self
            .layout
            .as_mut()
            .expect("checkpoint_persist requires a durable database");
        let mut journal_bytes = 0;
        if let Some(journal) = &self.journal {
            // Journal the pre-images before the first in-place write.  The
            // ids are collected *before* the catalog update relocates any
            // segment; reads go through the pager (not the pool) to capture
            // the on-disk content.
            let mut ids: BTreeSet<PageId> = data.page_ids().into_iter().collect();
            ids.extend(durable::overwrite_targets(layout, snaps));
            journal_bytes = journal::write_pre_images(journal, self.pool.pager().as_ref(), ids)?;
        }
        self.pool.flush_snapshot(data)?;
        let live: BTreeSet<String> = self.tables.keys().cloned().collect();
        let outcome =
            durable::apply_catalog_update(&self.pool, layout, snaps, &live, checkpoint_lsn)?;
        self.pool.flush_pages_subset(&outcome.written_pages)?;
        if let Some(journal) = &self.journal {
            journal::discard(journal)?;
        }
        self.pool.publish_pending()?;
        if let Some(wal) = &self.wal {
            wal.prune(checkpoint_lsn)?;
        }
        Ok((outcome, journal_bytes))
    }

    /// A full-rewrite checkpoint: marks every table wholly dirty, so the
    /// incremental machinery rewrites the complete catalog — the pre-v3
    /// behavior.  Never needed for correctness; the `checkpoint` bench
    /// experiment uses it as the baseline incremental checkpoints are
    /// measured against.
    pub fn checkpoint_full(&mut self) -> StorageResult<()> {
        for table in self.tables.values() {
            table.mark_all_dirty();
        }
        self.checkpoint()
    }

    /// Running checkpoint counters — chunks written/skipped, catalog and
    /// journal bytes, quiesce time — next to the pool's
    /// [`IoStats`](spgist_storage::IoStats).  Counters accumulate across
    /// checkpoints; diff with [`CheckpointStats::delta_since`] to meter one.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.ckpt_stats
    }

    /// Test hook: poisons the write-ahead log exactly as a flusher I/O
    /// failure would, so the fail-fast behavior above it (DML and queries
    /// rejected until a reopen recovers) can be exercised without a real
    /// disk fault.  No-op for in-memory databases.
    #[doc(hidden)]
    pub fn fail_wal_for_test(&self, msg: &str) {
        if let Some(wal) = &self.wal {
            wal.fail_for_test(msg);
        }
    }

    /// Checkpoints and consumes the database (clean shutdown).  A file
    /// closed this way reopens with [`Database::open`] restoring every
    /// table, row and index without any log replay.
    ///
    /// Dropping a durable database *without* closing it is safe too —
    /// acknowledged statements are recovered from the write-ahead log on
    /// the next open; closing just makes the reopen replay-free.
    pub fn close(mut self) -> StorageResult<()> {
        self.checkpoint()
    }

    /// Opens a multi-statement transaction.  Statements run through the
    /// returned [`Transaction`] handle are applied immediately (visible to
    /// concurrent readers — atomicity and durability, not isolation) but
    /// are **acknowledged only at [`Transaction::commit`]**: none of them
    /// waits for an fsync of its own, and a crash before the commit point
    /// erases all of them.  [`Transaction::abort`] (or dropping the handle)
    /// rolls every statement back via logical undo.
    ///
    /// DDL stays auto-commit and is not available through the handle; it
    /// needs `&mut Database`, which the borrow on the open transaction
    /// denies — so a checkpoint (which must not persist uncommitted work
    /// into the no-steal data file) can never run mid-transaction.
    ///
    /// Transactions work on in-memory databases too: same atomicity via
    /// undo, no durability (there is no log to commit into).
    pub fn begin(&self) -> StorageResult<Transaction<'_>> {
        if let Some(wal) = &self.wal {
            // Fail fast on a poisoned log rather than at the first statement.
            wal.health().map_err(|e| {
                StorageError::Io(std::io::Error::other(format!(
                    "database failed after a write-ahead log error \
                     (reopen to recover): {e}"
                )))
            })?;
        }
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        self.open_txns.fetch_add(1, Ordering::SeqCst);
        Ok(Transaction {
            db: self,
            id,
            began: false,
            undo: Vec::new(),
            done: false,
        })
    }

    /// The write-ahead log of a durable database (`None` in-memory):
    /// fsync/record counters for the bench harness, plus the durable-LSN
    /// watermark.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// The system catalog (access methods and operator classes).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared buffer pool behind every table and index (exposes I/O
    /// accounting: `db.pool().stats()`).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Mutable catalog access — registering or dropping operator classes
    /// changes how subsequent queries are routed, without touching any
    /// physical index.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Appends a DDL redo record after the statement's write-through
    /// checkpoint succeeded.  The record is technically redundant with that
    /// checkpoint — replay only needs it when recovering from an *earlier*
    /// checkpoint (a later one failed or was torn), where its existence
    /// checks re-execute or skip it as the image requires.  Logged after
    /// the checkpoint so a rolled-back statement leaves no record behind.
    fn log_ddl(&self, record: WalRecord) -> StorageResult<()> {
        match &self.wal {
            Some(wal) => wal.append(&record).map(|_| ()),
            None => Ok(()),
        }
    }

    /// Creates an empty table with the given key type.  On a durable
    /// database the catalog update is written through (checkpointed) before
    /// returning; if the write-through fails, the in-memory table is rolled
    /// back so memory and disk never diverge.
    pub fn create_table(&mut self, name: &str, key_type: KeyType) -> StorageResult<()> {
        if self.tables.contains_key(name) {
            return Err(StorageError::Unsupported(format!(
                "table {name:?} already exists"
            )));
        }
        let mut table = Table::create(name, key_type, Arc::clone(&self.pool))?;
        if let Some(wal) = &self.wal {
            table.attach_wal(Arc::clone(wal));
        }
        self.tables.insert(name.to_string(), Arc::new(table));
        if let Err(e) = self.checkpoint() {
            // A fresh table owns no pages yet: dropping the entry is a
            // complete rollback, and a retry can succeed.
            self.tables.remove(name);
            return Err(e);
        }
        self.log_ddl(WalRecord::CreateTable {
            table: name.to_string(),
            key_type: key_type.tag(),
        })
    }

    /// Builds a physical index on the named table, backfilling it from the
    /// existing heap rows (`CREATE INDEX`).  DDL: fails while shared handles
    /// are outstanding.  On a durable database the catalog update is written
    /// through before returning; a failed write-through drops the
    /// just-built index again (releasing its pages) so memory and disk
    /// never diverge.
    pub fn create_index(&mut self, table: &str, index: &str, spec: IndexSpec) -> StorageResult<()> {
        self.table_ddl(table)?.create_index(index, spec)?;
        if let Err(e) = self.checkpoint() {
            if let Ok(t) = self.table_ddl(table) {
                let _ = t.drop_index(index);
            }
            return Err(e);
        }
        self.log_ddl(WalRecord::CreateIndex {
            table: table.to_string(),
            index: index.to_string(),
            spec: spec.encode_spec(),
        })
    }

    /// Drops a physical index from the named table, releasing its pages;
    /// returns whether it existed.  DDL: fails while shared handles are
    /// outstanding.  The index-less catalog is persisted *before* the pages
    /// are freed, so a crash in between merely leaks pages — the on-disk
    /// catalog can never name pages that were already handed back for
    /// reuse.  A failed write-through re-attaches the index.
    pub fn drop_index(&mut self, table: &str, index: &str) -> StorageResult<bool> {
        let Some(named) = self.table_ddl(table)?.detach_index(index) else {
            return Ok(false);
        };
        if let Err(e) = self.checkpoint() {
            self.table_ddl(table)?.attach_index(named);
            return Err(e);
        }
        self.log_ddl(WalRecord::DropIndex {
            table: table.to_string(),
            index: index.to_string(),
        })?;
        named.index.destroy()?;
        Ok(true)
    }

    /// Exclusive (DDL) access to a table, as a `StorageResult` (unlike
    /// [`Database::table_mut`], which collapses "missing" and "shared" into
    /// `None`).
    fn table_ddl(&mut self, name: &str) -> StorageResult<&mut Table> {
        let arc = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StorageError::Unsupported(format!("no table named {name:?}")))?;
        Arc::get_mut(arc).ok_or_else(|| {
            StorageError::Unsupported(format!(
                "cannot run DDL on table {name:?} while shared handles are outstanding"
            ))
        })
    }

    /// Drops a table, releasing its heap pages and every index's pages to
    /// the pager's free list; returns whether it existed.  Fails while
    /// shared handles from [`Database::table_handle`] are outstanding
    /// (`AccessExclusiveLock` semantics).
    pub fn drop_table(&mut self, name: &str) -> StorageResult<bool> {
        let Some(table) = self.tables.remove(name) else {
            return Ok(false);
        };
        match Arc::try_unwrap(table) {
            Ok(table) => {
                // Persist the table-less catalog *before* destroying: if
                // the checkpoint fails the table is restored untouched, and
                // a crash after the checkpoint but before the destroy only
                // leaks the pages — the on-disk catalog never names pages
                // that were already freed for reuse.
                if let Err(e) = self.checkpoint() {
                    self.tables.insert(name.to_string(), Arc::new(table));
                    return Err(e);
                }
                self.log_ddl(WalRecord::DropTable {
                    table: name.to_string(),
                })?;
                table.destroy()?;
                Ok(true)
            }
            Err(table) => {
                // Put it back: dropping a shared table would pull pages out
                // from under live handles.
                self.tables.insert(name.to_string(), table);
                Err(StorageError::Unsupported(format!(
                    "cannot drop table {name:?} while shared handles are outstanding"
                )))
            }
        }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// Clones out a shared, `Send + Sync` handle on a table for concurrent
    /// DML and queries from other threads.
    pub fn table_handle(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).cloned()
    }

    /// Looks up a table for DDL (exclusive access).  `None` if the table
    /// does not exist *or* shared handles are outstanding.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name).and_then(Arc::get_mut)
    }

    fn table_or_err(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| StorageError::Unsupported(format!("no table named {name:?}")))
    }

    /// Plans `query` (a [`Query`] or bare [`Predicate`]) against the named
    /// table (`EXPLAIN`).
    pub fn plan(&self, table: &str, query: impl Into<Query>) -> StorageResult<AccessPath> {
        self.table_or_err(table)?.plan(&self.catalog, query)
    }

    /// Plans and executes `query` (a [`Query`] or bare [`Predicate`])
    /// against the named table, returning a streaming cursor.
    pub fn query<'d>(
        &'d self,
        table: &str,
        query: impl Into<Query>,
    ) -> StorageResult<ExecCursor<'d>> {
        self.table_or_err(table)?.query(&self.catalog, query)
    }

    /// Plans and executes a batch of queries against the named table on a
    /// pool of `n_threads` scoped worker threads — the multi-threaded query
    /// driver.
    ///
    /// Workers pull queries from a shared counter (so skewed query costs
    /// balance out) and each result lands in its query's input position:
    /// the output is deterministic and identical to running the batch
    /// serially, whatever the interleaving.  Fails with the first error any
    /// query produced.
    pub fn run_parallel(
        &self,
        table: &str,
        queries: &[Query],
        n_threads: usize,
    ) -> StorageResult<Vec<Vec<RowId>>> {
        let table = self.table_or_err(table)?;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<StorageResult<Vec<RowId>>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..n_threads.clamp(1, queries.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(query) = queries.get(i) else { break };
                    let result = table.query(&self.catalog, query).and_then(ExecCursor::rows);
                    *slots[i].lock() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every query slot is filled"))
            .collect()
    }

    /// [`Database::run_parallel`] for one query per call site: plans and
    /// executes `query` with [`Table::query_parallel`]'s partitioned scans.
    pub fn query_parallel(
        &self,
        table: &str,
        query: impl Into<Query>,
        n_threads: usize,
    ) -> StorageResult<Vec<(RowId, Datum)>> {
        self.table_or_err(table)?
            .query_parallel(&self.catalog, query, n_threads)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

/// The inverse of one applied transactional statement, executed in reverse
/// order on abort.  Undo is **not** logged: if the process dies mid-abort,
/// recovery reaches the same end state by dropping the loser transaction's
/// redo records, so compensation records would be redundant.
enum UndoOp {
    /// Undo an insert: remove the row again (its id slot stays allocated).
    Insert { table: Arc<Table>, row: RowId },
    /// Undo an `insert_many` batch: remove rows `first_row..first_row+count`.
    InsertMany {
        table: Arc<Table>,
        first_row: RowId,
        count: u64,
    },
    /// Undo a delete: re-insert the remembered datum at its original row id.
    Delete {
        table: Arc<Table>,
        row: RowId,
        datum: Datum,
    },
}

/// A multi-statement transaction from [`Database::begin`].
///
/// Statements apply immediately and are logged with this transaction's id,
/// but none of them waits for an fsync: the **commit point is the
/// `CommitTxn` record** that [`Transaction::commit`] submits and waits on —
/// one group-committed fsync makes the whole transaction durable.  Until
/// then the transaction is a *loser*: recovery after a crash drops every
/// one of its statements (their logged row ids are preserved as dead
/// row-directory slots so later statements' ids stay aligned, but no row
/// data and no index entry survive).
///
/// [`Transaction::abort`] — or dropping the handle without committing —
/// applies logical undo in reverse statement order: inserts are removed,
/// deletes are re-inserted from the remembered datum.
///
/// What transactions do **not** provide is isolation: statements are
/// visible to concurrent readers the moment they apply, exactly like
/// auto-commit DML (see the crate's scan-semantics notes).  DDL remains
/// auto-commit and requires `&mut Database`, which this handle's shared
/// borrow denies while it is open.
pub struct Transaction<'db> {
    db: &'db Database,
    id: TxnId,
    /// Whether `BeginTxn` has been submitted (lazily, just before the first
    /// logged statement — a read-only transaction leaves no log trace).
    began: bool,
    undo: Vec<UndoOp>,
    /// Set by `commit`/`abort`; `Drop` rolls back when still false.
    done: bool,
}

impl<'db> Transaction<'db> {
    /// This transaction's id, as it appears in the log records.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Number of statements executed (and thus undoable) so far.
    pub fn statement_count(&self) -> usize {
        self.undo.len()
    }

    fn table(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.db
            .table_handle(name)
            .ok_or_else(|| StorageError::Unsupported(format!("no table named {name:?}")))
    }

    /// Submits `BeginTxn` before the first logged statement, so replay sees
    /// the transaction open strictly before any of its statements.
    fn ensure_begun(&mut self) -> StorageResult<()> {
        if !self.began {
            if let Some(wal) = &self.db.wal {
                wal.submit(&WalRecord::BeginTxn { txn: self.id })?;
            }
            self.began = true;
        }
        Ok(())
    }

    /// Inserts a value into `table` under this transaction; the row id is
    /// assigned immediately but the insert is not durable (and not
    /// acknowledged) until [`Transaction::commit`].
    pub fn insert(&mut self, table: &str, datum: impl Into<Datum>) -> StorageResult<RowId> {
        let t = self.table(table)?;
        self.ensure_begun()?;
        let (row, _lsn) = t.insert_logged(datum.into(), self.id)?;
        self.undo.push(UndoOp::Insert { table: t, row });
        Ok(row)
    }

    /// Inserts a batch into `table` as one statement (one redo record)
    /// under this transaction.
    pub fn insert_many<I>(&mut self, table: &str, data: I) -> StorageResult<Vec<RowId>>
    where
        I: IntoIterator,
        I::Item: Into<Datum>,
    {
        let t = self.table(table)?;
        self.ensure_begun()?;
        let data: Vec<Datum> = data.into_iter().map(Into::into).collect();
        let (rows, _lsn) = t.insert_many_logged(data, self.id)?;
        if let Some(&first_row) = rows.first() {
            self.undo.push(UndoOp::InsertMany {
                table: t,
                first_row,
                count: rows.len() as u64,
            });
        }
        Ok(rows)
    }

    /// Deletes a row from `table` under this transaction; returns whether
    /// the row existed.  An abort re-inserts it at the same row id.
    pub fn delete(&mut self, table: &str, row: RowId) -> StorageResult<bool> {
        let t = self.table(table)?;
        self.ensure_begun()?;
        let (datum, _lsn) = t.delete_logged(row, self.id)?;
        match datum {
            Some(datum) => {
                self.undo.push(UndoOp::Delete {
                    table: t,
                    row,
                    datum,
                });
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Commits: submits the `CommitTxn` record and waits for its batch to
    /// reach disk.  That single fsync (shared with whatever else group
    /// commit batched) is the commit point for **every** statement of the
    /// transaction — on success all of them are durable; on a crash before
    /// it, none of them survive recovery.
    ///
    /// If the log fails here the transaction's durability is unknown; the
    /// database is poisoned (fail-fast on further use) and reopening
    /// recovers to the log's actual durable horizon, where the transaction
    /// is either wholly present or wholly absent.
    pub fn commit(mut self) -> StorageResult<()> {
        self.done = true;
        if self.began {
            if let Some(wal) = &self.db.wal {
                let lsn = wal.submit(&WalRecord::CommitTxn { txn: self.id })?;
                wal.wait_durable(lsn)?;
            }
        }
        Ok(())
    }

    /// Rolls every statement back (reverse order) and marks the
    /// transaction aborted in the log.  The undo itself is unlogged — see
    /// [`UndoOp`] — and the `AbortTxn` marker is submitted without waiting:
    /// recovery treats the transaction as a loser with or without it.
    pub fn abort(mut self) -> StorageResult<()> {
        self.done = true;
        self.rollback()
    }

    fn rollback(&mut self) -> StorageResult<()> {
        let mut first_err = None;
        while let Some(op) = self.undo.pop() {
            let result = match &op {
                UndoOp::Insert { table, row } => table.undo_insert(*row),
                UndoOp::InsertMany {
                    table,
                    first_row,
                    count,
                } => (*first_row..first_row + count)
                    .rev()
                    .try_for_each(|row| table.undo_insert(row)),
                UndoOp::Delete { table, row, datum } => table.undo_delete(*row, datum),
            };
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        if self.began {
            if let Some(wal) = &self.db.wal {
                let _ = wal.submit(&WalRecord::AbortTxn { txn: self.id });
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Test hook: simulates the process dying with this transaction open.
    /// A real crash runs no destructors, so the handle is forgotten — no
    /// undo, no `AbortTxn`, and the open-transaction registration stays up
    /// (a later checkpoint on this `Database` fails rather than persist the
    /// orphaned uncommitted work).  The only sane follow-up is dropping the
    /// `Database` and reopening, which drops the transaction as a loser.
    ///
    /// The undo list is released first: its entries hold `Arc<Table>`
    /// handles, and leaking those would keep the WAL (and its flusher
    /// thread) alive past the `Database` drop — the kill-point harnesses
    /// rely on that drop draining every submitted record to disk.
    #[doc(hidden)]
    pub fn crash_for_test(mut self) {
        self.undo.clear();
        std::mem::forget(self);
    }
}

impl Drop for Transaction<'_> {
    /// An uncommitted transaction rolls back on drop (best-effort: undo
    /// errors cannot surface from `Drop` — call [`Transaction::abort`] to
    /// observe them).
    fn drop(&mut self) {
        if !self.done {
            let _ = self.rollback();
        }
        self.db.open_txns.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("statements", &self.undo.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_table(n: usize) -> Database {
        let mut db = Database::in_memory();
        db.create_table("words", KeyType::Varchar).unwrap();
        let table = db.table_mut("words").unwrap();
        for i in 0..n {
            // Deterministic five-letter words over a small alphabet.
            let mut word = String::new();
            let mut v = i;
            for _ in 0..5 {
                word.push(char::from(b'a' + (v % 7) as u8));
                v /= 7;
            }
            table.insert(word).unwrap();
        }
        db
    }

    #[test]
    fn seq_scan_answers_queries_without_any_index() {
        let db = word_table(500);
        let cursor = db.query("words", Predicate::str_prefix("ab")).unwrap();
        assert_eq!(cursor.source(), &ScanSource::Heap);
        let rows = cursor.rows().unwrap();
        assert!(!rows.is_empty());
        for &row in &rows {
            let Datum::Text(word) = db.table("words").unwrap().datum(row).unwrap() else {
                panic!("non-text datum in a varchar table");
            };
            assert!(word.starts_with("ab"));
        }
    }

    #[test]
    fn index_scan_and_seq_scan_return_identical_rows() {
        let mut db = word_table(4000);
        // Plan before the index exists: sequential scan.
        let seq_rows = {
            let cursor = db.query("words", Predicate::str_regex("a?a?a")).unwrap();
            assert_eq!(cursor.source(), &ScanSource::Heap);
            let mut rows = cursor.rows().unwrap();
            rows.sort_unstable();
            rows
        };
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let cursor = db.query("words", Predicate::str_regex("a?a?a")).unwrap();
        assert_eq!(
            cursor.source(),
            &ScanSource::Index {
                name: "words_trie".into()
            },
            "a selective regex over 4000 rows must route to the trie"
        );
        let mut idx_rows = cursor.rows().unwrap();
        idx_rows.sort_unstable();
        assert_eq!(idx_rows, seq_rows);
        assert!(!idx_rows.is_empty());
    }

    #[test]
    fn insert_many_matches_a_loop_of_inserts() {
        let mut looped = Database::in_memory();
        looped.create_table("words", KeyType::Varchar).unwrap();
        let mut batched = Database::in_memory();
        batched.create_table("words", KeyType::Varchar).unwrap();
        batched
            .table_mut("words")
            .unwrap()
            .create_index("t", IndexSpec::Trie)
            .unwrap();
        looped
            .table_mut("words")
            .unwrap()
            .create_index("t", IndexSpec::Trie)
            .unwrap();

        let data = ["space", "spade", "star", "space", "blue"];
        let loop_rows: Vec<RowId> = data
            .iter()
            .map(|w| looped.table("words").unwrap().insert(*w).unwrap())
            .collect();
        let batch_rows = batched
            .table("words")
            .unwrap()
            .insert_many(data.iter().copied())
            .unwrap();
        assert_eq!(batch_rows, loop_rows, "row ids assigned in input order");
        for probe in ["space", "blue", "zzz"] {
            assert_eq!(
                batched
                    .query("words", Predicate::str_equals(probe))
                    .unwrap()
                    .rows()
                    .unwrap(),
                looped
                    .query("words", Predicate::str_equals(probe))
                    .unwrap()
                    .rows()
                    .unwrap(),
                "probe {probe}"
            );
        }
        // Type mismatches are rejected before anything lands; empty batches
        // are a no-op.
        assert!(batched
            .table("words")
            .unwrap()
            .insert_many([Datum::Point(Point::new(1.0, 2.0))])
            .is_err());
        assert_eq!(batched.table("words").unwrap().len(), 5);
        assert!(batched
            .table("words")
            .unwrap()
            .insert_many(Vec::<Datum>::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn create_index_seeds_exact_distinct_statistics() {
        let mut db = Database::in_memory();
        db.create_table("words", KeyType::Varchar).unwrap();
        let table = db.table_mut("words").unwrap();
        // 40 rows over 10 distinct values, with deletions: the session
        // approximation (insert-time set, deletions ignored) drifts from the
        // live truth.
        for i in 0..40 {
            table.insert(format!("w{}", i % 10)).unwrap();
        }
        for row in 0..4 {
            // Deletes every copy of "w0" .. leaves 9 live distinct values.
            table.delete(row * 10).unwrap();
        }
        assert_eq!(
            table.table_stats().distinct_values,
            10,
            "the running approximation ignores deletions"
        );
        table.create_index("t", IndexSpec::Trie).unwrap();
        assert_eq!(
            table.table_stats().distinct_values,
            9,
            "the bulk-build scan seeds the exact live distinct count"
        );
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let mut db = word_table(3000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let available = db.table("words").unwrap().available_indexes().unwrap();
        assert_eq!(available.len(), 1);
        assert_eq!(available[0].operator_class, "SP_GiST_trie");
        assert!(
            available[0].pages > 0,
            "stats must come from the built tree"
        );
        assert!(available[0].page_height > 0);
    }

    #[test]
    fn table_delete_removes_the_row_from_heap_and_indexes() {
        let mut db = word_table(2000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let probe = {
            let Datum::Text(w) = db.table("words").unwrap().datum(123).unwrap() else {
                panic!("non-text datum");
            };
            w
        };
        let before = db
            .query("words", Predicate::str_equals(&probe))
            .unwrap()
            .rows()
            .unwrap();
        assert!(before.contains(&123));
        assert!(db.table_mut("words").unwrap().delete(123).unwrap());
        assert!(!db.table_mut("words").unwrap().delete(123).unwrap());
        let after = db
            .query("words", Predicate::str_equals(&probe))
            .unwrap()
            .rows()
            .unwrap();
        assert!(!after.contains(&123));
    }

    #[test]
    fn type_mismatches_are_rejected_not_panicked() {
        let mut db = word_table(10);
        let table = db.table_mut("words").unwrap();
        assert!(table.insert(Point::new(1.0, 2.0)).is_err());
        assert!(table.create_index("kd", IndexSpec::KdTree).is_err());
        assert!(db
            .plan("words", Predicate::point_equals(Point::new(1.0, 2.0)))
            .is_err());
        assert!(db.query("missing", Predicate::str_equals("x")).is_err());
        // Mixed-type predicate trees cannot run on any single-column table.
        let mixed = Predicate::str_prefix("a").and(Predicate::point_equals(Point::new(0.0, 0.0)));
        assert!(db.plan("words", &mixed).is_err());
        // `@@` leaves are only meaningful as the whole predicate or a single
        // top-level conjunct.
        assert!(db
            .plan(
                "words",
                Predicate::str_nearest("abc").or(Predicate::str_equals("x"))
            )
            .is_err());
        assert!(db
            .plan("words", Predicate::str_nearest("abc").negate())
            .is_err());
        assert!(db
            .plan(
                "words",
                Predicate::str_nearest("a").and(Predicate::str_nearest("b"))
            )
            .is_err());
        // As the whole predicate it plans fine (sorted heap fallback here).
        assert!(db
            .plan("words", Predicate::Str(StringQuery::Nearest("abc".into())))
            .is_ok());
    }

    #[test]
    fn run_parallel_matches_serial_execution() {
        let mut db = word_table(3000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let queries: Vec<Query> = ["a", "b", "ab", "ba", "ccc", "zzzz"]
            .iter()
            .map(|p| Query::new(Predicate::str_prefix(p)))
            .collect();
        let serial: Vec<Vec<RowId>> = queries
            .iter()
            .map(|q| db.query("words", q).unwrap().rows().unwrap())
            .collect();
        for threads in [1, 2, 4, 9] {
            assert_eq!(
                db.run_parallel("words", &queries, threads).unwrap(),
                serial,
                "batch results are deterministic at {threads} threads"
            );
        }
    }

    #[test]
    fn query_parallel_partitions_seq_scans_deterministically() {
        // Large enough that the cost gate opens the parallel path.
        let db = word_table(60_000);
        let table = db.table("words").unwrap();
        assert!(
            table.parallel_seq_scan_pays(4),
            "60k rows must amortize thread startup"
        );
        let pred = Predicate::str_prefix("a");
        let serial: Vec<(RowId, Datum)> = db
            .query("words", &pred)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                db.query_parallel("words", &pred, threads).unwrap(),
                serial,
                "chunked scan merges identically at {threads} threads"
            );
        }
        // A pushed-down LIMIT caps the merged result too.
        let limited = db
            .query_parallel("words", pred.clone().limit(17), 4)
            .unwrap();
        assert_eq!(limited, serial[..17.min(serial.len())]);

        // Small tables fail the gate and stay serial, same answers.
        let small = word_table(50);
        assert!(!small.table("words").unwrap().parallel_seq_scan_pays(4));
        let expect = small.query("words", &pred).unwrap().rows().unwrap();
        let got: Vec<RowId> = small
            .query_parallel("words", &pred, 4)
            .unwrap()
            .into_iter()
            .map(|(row, _)| row)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn query_parallel_agrees_on_composite_predicates() {
        let mut db = word_table(4000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        db.table_mut("words")
            .unwrap()
            .create_index("words_suffix", IndexSpec::SuffixTree)
            .unwrap();
        let composite = Predicate::str_prefix("a").and(Predicate::str_substring("b"));
        let mut serial = db.query("words", &composite).unwrap().rows().unwrap();
        serial.sort_unstable();
        for threads in [1, 3, 5] {
            let mut rows: Vec<RowId> = db
                .query_parallel("words", &composite, threads)
                .unwrap()
                .into_iter()
                .map(|(row, _)| row)
                .collect();
            rows.sort_unstable();
            assert_eq!(rows, serial, "composite plan agrees at {threads} threads");
        }
    }

    #[test]
    fn drop_index_and_drop_table_release_pages() {
        let mut db = word_table(2000);
        let before_free = db.pool().free_page_count();
        db.table_mut("words")
            .unwrap()
            .create_index("t", IndexSpec::Trie)
            .unwrap();
        assert!(db.table_mut("words").unwrap().drop_index("t").unwrap());
        assert!(
            !db.table_mut("words").unwrap().drop_index("t").unwrap(),
            "second drop finds nothing"
        );
        let freed_after_index = db.pool().free_page_count();
        assert!(
            freed_after_index > before_free,
            "dropping the index must return its pages"
        );
        assert!(db.drop_table("words").unwrap());
        assert!(!db.drop_table("words").unwrap());
        assert!(
            db.pool().free_page_count() > freed_after_index,
            "dropping the table must return its heap pages"
        );
        // A rebuilt same-sized table is served from the recycled pages.
        let pages = db.pool().page_count();
        db.create_table("words2", KeyType::Varchar).unwrap();
        let table = db.table_mut("words2").unwrap();
        for i in 0..2000u32 {
            table.insert(format!("word{i:05}")).unwrap();
        }
        assert_eq!(
            db.pool().page_count(),
            pages,
            "the file must not grow while freed pages last"
        );
    }

    #[test]
    fn ddl_requires_exclusive_access() {
        let mut db = word_table(10);
        let handle = db.table_handle("words").unwrap();
        assert!(
            db.table_mut("words").is_none(),
            "DDL access denied while a handle is outstanding"
        );
        assert!(db.drop_table("words").is_err());
        assert!(db.table("words").is_some(), "refused drop leaves the table");
        // DML through the shared handle still works.
        handle.insert("concurrent").unwrap();
        assert_eq!(handle.len(), 11);
        drop(handle);
        assert!(db.table_mut("words").is_some());
        assert!(db.drop_table("words").unwrap());
        assert!(db.table("words").is_none());
    }

    #[test]
    fn durable_database_reopens_tables_and_indexes() {
        let dir = std::env::temp_dir().join(format!("spgist-exec-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");
        {
            let mut db = Database::create(&path).unwrap();
            assert!(db.is_durable());
            db.create_table("words", KeyType::Varchar).unwrap();
            // Enough rows that the planner routes selective predicates to
            // the index instead of the (honestly cheaper on tiny tables)
            // sequential scan.
            for i in 0..3000u32 {
                let mut word = String::new();
                let mut v = i;
                for _ in 0..5 {
                    word.push(char::from(b'a' + (v % 7) as u8));
                    v /= 7;
                }
                db.table_mut("words").unwrap().insert(word).unwrap();
            }
            for w in ["space", "spade", "star", "blue"] {
                db.table_mut("words").unwrap().insert(w).unwrap();
            }
            db.create_index("words", "words_trie", IndexSpec::Trie)
                .unwrap();
            db.create_table("pts", KeyType::Point).unwrap();
            db.table_mut("pts")
                .unwrap()
                .insert(Point::new(3.0, 4.0))
                .unwrap();
            db.close().unwrap();
        }
        {
            let mut db = Database::open(&path).unwrap();
            assert_eq!(
                db.table("words").unwrap().index_names(),
                vec!["words_trie"],
                "indexes restore from the catalog"
            );
            assert_eq!(db.table("words").unwrap().len(), 3004);
            assert_eq!(db.table("pts").unwrap().len(), 1);
            let cursor = db.query("words", Predicate::str_prefix("sp")).unwrap();
            assert!(
                cursor.source().scans_index("words_trie"),
                "reopened index serves queries"
            );
            let rows = cursor.rows().unwrap();
            assert_eq!(rows.len(), 2);
            // The database stays fully operational: DML, DDL, drop.
            db.table_handle("words").unwrap().insert("spark").unwrap();
            assert_eq!(
                db.query("words", Predicate::str_prefix("sp"))
                    .unwrap()
                    .rows()
                    .unwrap()
                    .len(),
                3
            );
            assert!(db.drop_index("words", "words_trie").unwrap());
            assert!(db.drop_table("words").unwrap());
            db.close().unwrap();
        }
        {
            // Third generation sees the second generation's DDL.
            let db = Database::open(&path).unwrap();
            assert!(db.table("words").is_none(), "dropped table stays dropped");
            assert_eq!(db.table("pts").unwrap().len(), 1);
        }
        // Creating over an existing database is refused, not a silent wipe.
        assert!(
            Database::create(&path).is_err(),
            "create must refuse to overwrite an existing database file"
        );
        assert_eq!(
            Database::open(&path).unwrap().table("pts").unwrap().len(),
            1,
            "the refused create must leave the file untouched"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_database_is_not_durable_but_fully_functional() {
        let mut db = word_table(100);
        assert!(!db.is_durable());
        db.checkpoint().unwrap();
        db.create_index("words", "t", IndexSpec::Trie).unwrap();
        assert!(db.drop_index("words", "t").unwrap());
        assert!(!db.drop_index("words", "t").unwrap());
        assert!(db.create_index("missing", "t", IndexSpec::Trie).is_err());
        let handle = db.table_handle("words").unwrap();
        assert!(
            db.create_index("words", "t", IndexSpec::Trie).is_err(),
            "DDL refused while handles are outstanding"
        );
        drop(handle);
    }

    #[test]
    fn cursor_streams_lazily() {
        let mut db = word_table(3000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let mut cursor = db.query("words", Predicate::str_prefix("a")).unwrap();
        // Pulling a single item must work without draining the cursor.
        let first = cursor.next().unwrap().unwrap();
        let Datum::Text(word) = first.1 else {
            panic!("non-text datum");
        };
        assert!(word.starts_with('a'));
    }

    #[test]
    fn txn_commit_keeps_rows_and_abort_undoes_them() {
        let db = word_table(10);
        let mut txn = db.begin().unwrap();
        let r1 = txn.insert("words", "alpha").unwrap();
        let r2 = txn.insert("words", "bravo").unwrap();
        assert_eq!((r1, r2), (10, 11));
        assert_eq!(txn.statement_count(), 2);
        // Statements are visible immediately: transactions provide
        // atomicity + durability, not isolation.
        assert_eq!(db.table("words").unwrap().len(), 12);
        txn.commit().unwrap();
        assert_eq!(db.table("words").unwrap().len(), 12);

        let mut txn = db.begin().unwrap();
        txn.insert("words", "gone").unwrap();
        txn.insert_many("words", ["x", "y", "z"]).unwrap();
        assert_eq!(db.table("words").unwrap().len(), 16);
        txn.abort().unwrap();
        assert_eq!(
            db.table("words").unwrap().len(),
            12,
            "abort removes every row the transaction inserted"
        );
    }

    #[test]
    fn aborted_insert_leaves_a_dead_row_id() {
        let db = word_table(5);
        let mut txn = db.begin().unwrap();
        let dead = txn.insert("words", "ghost").unwrap();
        txn.abort().unwrap();
        // The row id burned by the aborted insert is never reused: row ids
        // stay deterministic across replay, which tombstones loser inserts.
        let live = db.table("words").unwrap().insert("alive").unwrap();
        assert_eq!(live, dead + 1);
        assert!(db.table("words").unwrap().datum(dead).is_err());
    }

    #[test]
    fn txn_delete_abort_restores_datum_at_same_row() {
        let db = word_table(10);
        let before = db.table("words").unwrap().datum(3).unwrap();
        let mut txn = db.begin().unwrap();
        assert!(txn.delete("words", 3).unwrap());
        assert!(db.table("words").unwrap().datum(3).is_err());
        // Deleting a row that is already gone is not an error.
        assert!(!txn.delete("words", 3).unwrap());
        txn.abort().unwrap();
        assert_eq!(
            db.table("words").unwrap().datum(3).unwrap(),
            before,
            "abort re-inserts the deleted datum at its original row id"
        );
    }

    #[test]
    fn txn_undo_runs_in_reverse_order() {
        let db = word_table(4);
        let mut txn = db.begin().unwrap();
        // Delete row 2, then insert; undo must first remove the insert and
        // then restore row 2, leaving exactly the original table.
        assert!(txn.delete("words", 2).unwrap());
        txn.insert("words", "fresh").unwrap();
        drop(txn); // dropping an uncommitted transaction rolls it back
        let t = db.table("words").unwrap();
        assert_eq!(t.len(), 4);
        for row in 0..4 {
            assert!(t.datum(row).is_ok(), "row {row} must survive rollback");
        }
    }

    #[test]
    fn txn_ids_are_distinct_and_missing_table_errors() {
        let db = word_table(1);
        let a = db.begin().unwrap();
        let b = db.begin().unwrap();
        assert_ne!(a.id(), b.id());
        let mut c = db.begin().unwrap();
        assert!(c.insert("missing", "x").is_err());
        assert_eq!(c.statement_count(), 0, "a failed statement logs nothing");
        a.commit().unwrap();
        b.abort().unwrap();
        c.commit().unwrap();
    }

    #[test]
    fn checkpoint_refuses_while_a_transaction_is_leaked_open() {
        let mut db = word_table(2);
        db.checkpoint().unwrap();
        let mut txn = db.begin().unwrap();
        txn.insert("words", "uncommitted").unwrap();
        // Simulate a crash: the transaction vanishes without commit or
        // rollback, leaving its registration in place.
        txn.crash_for_test();
        let err = db.checkpoint().unwrap_err();
        assert!(
            matches!(err, StorageError::OpenTransactions(1)),
            "no-steal checkpoint must refuse with the typed variant: {err}"
        );
        assert!(
            err.to_string().contains("open transaction"),
            "no-steal checkpoint must refuse to persist uncommitted work: {err}"
        );
    }

    #[test]
    fn durable_txn_commit_survives_reopen_and_abort_does_not() {
        let dir = std::env::temp_dir().join(format!("spgist-exec-txn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");
        let dead;
        {
            let mut db = Database::create(&path).unwrap();
            db.create_table("words", KeyType::Varchar).unwrap();
            let mut txn = db.begin().unwrap();
            txn.insert("words", "committed-a").unwrap();
            txn.insert("words", "committed-b").unwrap();
            txn.commit().unwrap();
            let mut txn = db.begin().unwrap();
            dead = txn.insert("words", "aborted").unwrap();
            txn.abort().unwrap();
            db.close().unwrap();
        }
        {
            let db = Database::open(&path).unwrap();
            let t = db.table("words").unwrap();
            assert_eq!(t.len(), 2, "only the committed transaction's rows survive");
            assert!(t.datum(dead).is_err(), "the aborted row stays dead");
            // The dead slot still burns its row id after reopen.
            assert_eq!(t.insert("later").unwrap(), dead + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_open_txn_is_a_loser_after_unclean_shutdown() {
        let dir = std::env::temp_dir().join(format!("spgist-exec-loser-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");
        {
            let mut db = Database::create(&path).unwrap();
            db.create_table("words", KeyType::Varchar).unwrap();
            db.table_mut("words").unwrap().insert("auto-0").unwrap();
            let mut txn = db.begin().unwrap();
            txn.insert("words", "loser-1").unwrap();
            txn.insert("words", "loser-2").unwrap();
            // Interleave an auto-commit write so loser tombstones must keep
            // later row ids aligned during replay.
            db.table("words").unwrap().insert("auto-3").unwrap();
            let mut txn2 = db.begin().unwrap();
            txn2.insert("words", "winner-4").unwrap();
            txn2.commit().unwrap();
            txn.crash_for_test();
            // Crash without close(): drop(db) drains the WAL flusher, so
            // every submitted record is on disk — but no CommitTxn for the
            // first transaction ever was.
        }
        {
            let db = Database::open(&path).unwrap();
            let t = db.table("words").unwrap();
            assert_eq!(t.datum(0).unwrap(), Datum::Text("auto-0".into()));
            assert!(t.datum(1).is_err(), "loser insert dropped");
            assert!(t.datum(2).is_err(), "loser insert dropped");
            assert_eq!(t.datum(3).unwrap(), Datum::Text("auto-3".into()));
            assert_eq!(t.datum(4).unwrap(), Datum::Text("winner-4".into()));
            assert_eq!(t.len(), 3, "two auto-commit rows plus the winner");
            // Row-id determinism: the next insert lands after the tombstones.
            assert_eq!(t.insert("next").unwrap(), 5);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
