//! The durable catalog: the on-disk record that makes a whole [`Database`]
//! reopenable.
//!
//! PostgreSQL's system catalogs are ordinary relations: an SP-GiST index
//! survives a restart because `pg_class` / `pg_index` name its relfilenode
//! and the access method knows how to pick the tree up from its meta page.
//! This module is that idea scaled to the workspace: a **catalog meta-table**
//! serialized with the workspace [`Codec`] and stored in a chain of ordinary
//! pages rooted at a well-known page (logical page 0 of the database file,
//! [`CATALOG_ROOT`]).  It records, for every table: the key type, the heap's
//! page directory and record count, the row directory (row id → heap record),
//! and every index's durable identity (class, configuration, tree meta page,
//! owned-page list) — everything `Database::open` needs to reconstruct the
//! executor state with **zero rebuild scans**.
//!
//! Durability scope: DDL writes the catalog through before returning, and
//! `Database::close` / `Database::checkpoint` persist DML state (row
//! directories, heap directories, index page lists).  This is
//! clean-shutdown durability, not WAL crash recovery: a reopen after a
//! crash between checkpoints sees the last checkpointed state at best, and
//! a torn file fails [`read_catalog`] with [`StorageError::Corrupt`] rather
//! than returning wrong rows.
//!
//! [`Database`]: crate::exec::Database

use std::sync::Arc;

use spgist_core::SpGistConfig;
use spgist_indexes::geom::Rect;
use spgist_storage::{
    BufferPool, Codec, Page, PageId, RecordId, StorageError, StorageResult, MAX_RECORD_SIZE,
};

/// The well-known root of the catalog page chain: the first logical page of
/// a database file, allocated by `Database::create` before anything else.
pub(crate) const CATALOG_ROOT: PageId = 0;

/// Magic marker leading the catalog blob (`"SPGC"`).
const CATALOG_MAGIC: u32 = 0x5350_4743;

/// Catalog format version.  Bumping it breaks open compatibility on purpose
/// (the meta-v1 policy: no migrations, old files fail with `Corrupt`).
/// v2 added `checkpoint_lsn` for WAL recovery.
const CATALOG_VERSION: u8 = 2;

/// Chain terminator for catalog continuation pointers.
const CHAIN_END: PageId = PageId::MAX;

/// Payload bytes per catalog chain page: one record per page, minus the
/// 4-byte continuation pointer, with slack for the slot directory.
const CHUNK: usize = MAX_RECORD_SIZE - 64;

/// Index kind tags persisted in the catalog (stable on-disk values).
pub(crate) const KIND_TRIE: u8 = 0;
pub(crate) const KIND_SUFFIX: u8 = 1;
pub(crate) const KIND_KDTREE: u8 = 2;
pub(crate) const KIND_PQUADTREE: u8 = 3;
pub(crate) const KIND_PMR: u8 = 4;

/// Durable identity of one physical index.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PersistedIndex {
    /// Index name (unique per table).
    pub name: String,
    /// Index kind tag (`KIND_*`).
    pub kind: u8,
    /// The interface parameters the tree was created with (config
    /// round-trip).
    pub config: SpGistConfig,
    /// World rectangle (meaningful for the PMR quadtree; zeroed otherwise).
    pub world: Rect,
    /// The backing tree's meta page.
    pub meta_page: PageId,
    /// Pages owned by the backing tree, in allocation order.
    pub pages: Vec<PageId>,
    /// Logical word count (suffix tree only; the tree's own item count is
    /// the suffix count).
    pub strings: u64,
}

impl Codec for PersistedIndex {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.kind.encode(out);
        self.config.encode(out);
        self.world.encode(out);
        self.meta_page.encode(out);
        self.pages.encode(out);
        self.strings.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(PersistedIndex {
            name: String::decode(buf)?,
            kind: u8::decode(buf)?,
            config: SpGistConfig::decode(buf)?,
            world: Rect::decode(buf)?,
            meta_page: PageId::decode(buf)?,
            pages: Vec::decode(buf)?,
            strings: u64::decode(buf)?,
        })
    }
}

/// Durable state of one table: heap directory, row directory, statistics
/// seeds, and every index.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PersistedTable {
    /// Table name.
    pub name: String,
    /// Key type tag (0 varchar, 1 point, 2 segment).
    pub key_type: u8,
    /// Pages owned by the heap file, in allocation order.
    pub heap_pages: Vec<PageId>,
    /// Live records in the heap.
    pub heap_records: u64,
    /// Live rows (row directory entries that are `Some`).
    pub live_rows: u64,
    /// Distinct-values statistic at checkpoint time (a seed, not truth).
    pub distinct: u64,
    /// Row directory: row id (dense index) → heap record, `None` once
    /// deleted.
    pub rows: Vec<Option<RecordId>>,
    /// Every physical index on the table.
    pub indexes: Vec<PersistedIndex>,
}

impl Codec for PersistedTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.key_type.encode(out);
        self.heap_pages.encode(out);
        self.heap_records.encode(out);
        self.live_rows.encode(out);
        self.distinct.encode(out);
        self.rows.encode(out);
        self.indexes.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(PersistedTable {
            name: String::decode(buf)?,
            key_type: u8::decode(buf)?,
            heap_pages: Vec::decode(buf)?,
            heap_records: u64::decode(buf)?,
            live_rows: u64::decode(buf)?,
            distinct: u64::decode(buf)?,
            rows: Vec::decode(buf)?,
            indexes: Vec::decode(buf)?,
        })
    }
}

/// The whole catalog meta-table.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct PersistedCatalog {
    /// The WAL position this catalog image corresponds to: recovery skips
    /// log records below it (they are already reflected in the pages) and
    /// replays everything at or above it.
    pub checkpoint_lsn: u64,
    /// Every table in the database.
    pub tables: Vec<PersistedTable>,
}

impl Codec for PersistedCatalog {
    fn encode(&self, out: &mut Vec<u8>) {
        CATALOG_MAGIC.encode(out);
        CATALOG_VERSION.encode(out);
        self.checkpoint_lsn.encode(out);
        self.tables.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        if u32::decode(buf)? != CATALOG_MAGIC {
            return Err(StorageError::Corrupt(
                "page 0 holds no catalog record (not a Database file)".into(),
            ));
        }
        let version = u8::decode(buf)?;
        if version != CATALOG_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported catalog version {version} (this build reads v{CATALOG_VERSION}; \
                 no migration — rebuild the database file)"
            )));
        }
        Ok(PersistedCatalog {
            checkpoint_lsn: u64::decode(buf)?,
            tables: Vec::decode(buf)?,
        })
    }
}

/// Writes `catalog` through the chain rooted at [`CATALOG_ROOT`], reusing
/// the pages in `chain` (extending or shrinking it as the blob requires) and
/// returning with `chain` naming exactly the pages now holding the catalog.
/// Page contents go through the buffer pool; the caller decides when to
/// flush (DDL flushes before returning; checkpoints flush at the end).
pub(crate) fn write_catalog(
    pool: &Arc<BufferPool>,
    chain: &mut Vec<PageId>,
    catalog: &PersistedCatalog,
) -> StorageResult<()> {
    debug_assert_eq!(chain.first(), Some(&CATALOG_ROOT), "chain starts at root");
    let blob = catalog.to_bytes();
    let chunks: Vec<&[u8]> = blob.chunks(CHUNK).collect();
    debug_assert!(
        !chunks.is_empty(),
        "the magic header makes the blob non-empty"
    );
    // Size the chain to the blob: grow with fresh pages, return extras.
    while chain.len() < chunks.len() {
        chain.push(pool.allocate_page()?);
    }
    while chain.len() > chunks.len() {
        let extra = chain.pop().expect("chain is longer than one chunk");
        pool.free_page(extra)?;
    }
    for (i, chunk) in chunks.iter().enumerate() {
        let next = chain.get(i + 1).copied().unwrap_or(CHAIN_END);
        let mut record = Vec::with_capacity(4 + chunk.len());
        next.encode(&mut record);
        record.extend_from_slice(chunk);
        pool.with_page_mut(chain[i], |p| {
            *p = Page::new();
            p.insert(&record).map(|_| ())
        })??;
    }
    Ok(())
}

/// Reads the catalog blob from the chain rooted at [`CATALOG_ROOT`],
/// returning the decoded catalog and the chain's page list (for subsequent
/// rewrites).  Every failure — missing record, bad pointer, torn blob — is
/// reported as [`StorageError::Corrupt`]: a damaged catalog must never be
/// silently misread.
pub(crate) fn read_catalog(
    pool: &Arc<BufferPool>,
) -> StorageResult<(PersistedCatalog, Vec<PageId>)> {
    let corrupt = |msg: String| StorageError::Corrupt(msg);
    let mut blob = Vec::new();
    let mut chain = Vec::new();
    let mut visited = std::collections::HashSet::new();
    let mut cursor = CATALOG_ROOT;
    while cursor != CHAIN_END {
        if !visited.insert(cursor) {
            return Err(corrupt(format!("catalog chain revisits page {cursor}")));
        }
        chain.push(cursor);
        let record = pool
            .with_page(cursor, |p| p.get(0).map(<[u8]>::to_vec))
            .map_err(|e| corrupt(format!("catalog page {cursor} unreadable: {e}")))?
            .map_err(|e| corrupt(format!("catalog page {cursor} holds no record: {e}")))?;
        let mut buf = record.as_slice();
        let next = PageId::decode(&mut buf)
            .map_err(|e| corrupt(format!("catalog page {cursor} truncated: {e}")))?;
        blob.extend_from_slice(buf);
        cursor = next;
    }
    let catalog = PersistedCatalog::from_bytes(&blob)
        .map_err(|e| corrupt(format!("catalog record does not decode: {e}")))?;
    Ok((catalog, chain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgist_core::{ClusteringPolicy, NodeShrink, PathShrink};

    fn sample_catalog(tables: usize, rows_per_table: usize) -> PersistedCatalog {
        let config = SpGistConfig {
            partitions: 27,
            bucket_size: 16,
            resolution: 128,
            path_shrink: PathShrink::TreeShrink,
            node_shrink: NodeShrink::OmitEmpty,
            split_once: false,
            clustering: ClusteringPolicy::ParentFirst,
        };
        PersistedCatalog {
            checkpoint_lsn: 41,
            tables: (0..tables)
                .map(|t| PersistedTable {
                    name: format!("table-{t}"),
                    key_type: (t % 3) as u8,
                    heap_pages: (0..10).map(|i| (t * 100 + i) as PageId).collect(),
                    heap_records: rows_per_table as u64,
                    live_rows: rows_per_table as u64,
                    distinct: rows_per_table as u64 / 2,
                    rows: (0..rows_per_table)
                        .map(|i| {
                            (i % 7 != 0)
                                .then(|| RecordId::new((i / 100) as PageId, (i % 100) as u16))
                        })
                        .collect(),
                    indexes: vec![PersistedIndex {
                        name: format!("ix-{t}"),
                        kind: KIND_TRIE,
                        config,
                        world: Rect::new(0.0, 0.0, 100.0, 100.0),
                        meta_page: 7,
                        pages: vec![7, 8, 9],
                        strings: 0,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn catalog_blob_roundtrips() {
        let cat = sample_catalog(3, 50);
        assert_eq!(PersistedCatalog::from_bytes(&cat.to_bytes()).unwrap(), cat);
    }

    #[test]
    fn catalog_chain_roundtrips_including_multi_page_blobs() {
        let pool = BufferPool::in_memory();
        let root = pool.allocate_page().unwrap();
        assert_eq!(root, CATALOG_ROOT);
        let mut chain = vec![root];

        // Small catalog: single page.
        let small = sample_catalog(1, 10);
        write_catalog(&pool, &mut chain, &small).unwrap();
        assert_eq!(chain.len(), 1);
        let (read, read_chain) = read_catalog(&pool).unwrap();
        assert_eq!(read, small);
        assert_eq!(read_chain, chain);

        // Big catalog (a few thousand row-directory entries): multi-page.
        let big = sample_catalog(4, 30_000);
        write_catalog(&pool, &mut chain, &big).unwrap();
        assert!(chain.len() > 1, "a big catalog must chain");
        let (read, read_chain) = read_catalog(&pool).unwrap();
        assert_eq!(read, big);
        assert_eq!(read_chain, chain);

        // Shrinking back releases the continuation pages.
        let free_before = pool.free_page_count();
        write_catalog(&pool, &mut chain, &small).unwrap();
        assert_eq!(chain.len(), 1);
        assert!(pool.free_page_count() > free_before);
        let (read, _) = read_catalog(&pool).unwrap();
        assert_eq!(read, small);
    }

    #[test]
    fn torn_catalog_fails_with_corrupt() {
        let pool = BufferPool::in_memory();
        let root = pool.allocate_page().unwrap();
        let mut chain = vec![root];
        let big = sample_catalog(2, 30_000);
        write_catalog(&pool, &mut chain, &big).unwrap();
        assert!(chain.len() > 1);
        // Zero a continuation page: the read must fail loudly.
        pool.with_page_mut(chain[1], |p| *p = Page::new()).unwrap();
        match read_catalog(&pool) {
            Err(StorageError::Corrupt(_)) => {}
            other => panic!("torn catalog must be Corrupt, got {other:?}"),
        }
        // Zero the root page: same.
        pool.with_page_mut(root, |p| *p = Page::new()).unwrap();
        assert!(matches!(read_catalog(&pool), Err(StorageError::Corrupt(_))));
    }
}
