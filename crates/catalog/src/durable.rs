//! The durable catalog: the on-disk record that makes a whole [`Database`]
//! reopenable.
//!
//! PostgreSQL's system catalogs are ordinary relations: an SP-GiST index
//! survives a restart because `pg_class` / `pg_index` name its relfilenode
//! and the access method knows how to pick the tree up from its meta page.
//! This module is that idea scaled to the workspace: a **catalog meta-table**
//! serialized with the workspace [`Codec`] and stored in ordinary pages
//! rooted at a well-known page (logical page 0 of the database file,
//! [`CATALOG_ROOT`]).  It records, for every table: the key type, the heap's
//! page directory and record count, the row directory (row id → heap record),
//! and every index's durable identity (class, configuration, tree meta page,
//! owned-page list) — everything `Database::open` needs to reconstruct the
//! executor state with **zero rebuild scans**.
//!
//! # Format v3: a root page plus per-table chunked segments
//!
//! Earlier formats stored the whole catalog as one blob chained across
//! pages, so every checkpoint rewrote O(rows) bytes no matter how little
//! changed.  v3 splits the catalog into independently rewritable pieces,
//! each a self-describing [`CatalogChunk`] stored in its own **segment** (a
//! chain of pages, one record per page: `[next: PageId][fragment]`):
//!
//! ```text
//! page 0 ──► Root { checkpoint_lsn, [(table name, meta page)] }
//!               │
//!               ├─► TableMeta { counters, [row-chunk page], [heap-chunk page], indexes }
//!               │       ├─► Rows  [Option<RecordId>; ≤ ROWS_PER_CHUNK]     (chunk 0)
//!               │       ├─► Rows  ...                                      (chunk 1)
//!               │       └─► Heap  [PageId; ≤ HEAP_IDS_PER_CHUNK]
//!               └─► TableMeta ...
//! ```
//!
//! A checkpoint rewrites only the root, the metadata of tables mutated since
//! the previous checkpoint, and the row/heap chunks that actually changed —
//! an untouched table costs zero page writes.  Every chunk carries the
//! magic/version/tag header, so a v2 catalog (or any torn or foreign page)
//! fails [`decode_chunk`] loudly instead of being misread.
//!
//! Durability scope: DDL writes the catalog through before returning, and
//! `Database::close` / `Database::checkpoint` persist DML state (row
//! directories, heap directories, index page lists).  Crash-atomicity comes
//! from the pre-image journal in `spgist_storage::journal`; a torn file
//! fails [`read_catalog`] with [`StorageError::Corrupt`] rather than
//! returning wrong rows.
//!
//! [`Database`]: crate::exec::Database

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

use spgist_core::SpGistConfig;
use spgist_indexes::geom::Rect;
use spgist_storage::{
    BufferPool, Codec, Page, PageId, RecordId, StorageError, StorageResult, MAX_RECORD_SIZE,
};

/// The well-known root of the catalog: the first logical page of a database
/// file, allocated by `Database::create` before anything else.
pub(crate) const CATALOG_ROOT: PageId = 0;

/// Magic marker leading every catalog chunk (`"SPGC"`).
pub const CATALOG_MAGIC: u32 = 0x5350_4743;

/// Catalog format version.  Bumping it breaks open compatibility on purpose
/// (the meta-v1 policy: no migrations, old files fail with `Corrupt`).
/// v2 added `checkpoint_lsn` for WAL recovery; v3 split the catalog into a
/// root page plus per-table chunked segments for incremental checkpoints.
pub const CATALOG_VERSION: u8 = 3;

/// Chain terminator for segment continuation pointers.
const CHAIN_END: PageId = PageId::MAX;

/// Payload bytes per segment page: one record per page, minus the 4-byte
/// continuation pointer, with slack for the slot directory.
const SEG_CHUNK: usize = MAX_RECORD_SIZE - 64;

/// Row-directory entries per [`CatalogChunk::Rows`] chunk.  ~7 encoded
/// bytes per entry keeps one chunk within a single page, so dirtying one
/// row costs one catalog page write.
pub const ROWS_PER_CHUNK: u64 = 1000;

/// Heap-directory page ids per [`CatalogChunk::Heap`] chunk.
pub const HEAP_IDS_PER_CHUNK: usize = 1500;

/// Chunk tag: the catalog root ([`CatalogChunk::Root`]).
const TAG_ROOT: u8 = 1;
/// Chunk tag: one table's metadata ([`CatalogChunk::TableMeta`]).
const TAG_TABLE_META: u8 = 2;
/// Chunk tag: a run of row-directory entries ([`CatalogChunk::Rows`]).
const TAG_ROWS: u8 = 3;
/// Chunk tag: a run of heap-directory page ids ([`CatalogChunk::Heap`]).
const TAG_HEAP: u8 = 4;

/// Index kind tags persisted in the catalog (stable on-disk values).
pub(crate) const KIND_TRIE: u8 = 0;
pub(crate) const KIND_SUFFIX: u8 = 1;
pub(crate) const KIND_KDTREE: u8 = 2;
pub(crate) const KIND_PQUADTREE: u8 = 3;
pub(crate) const KIND_PMR: u8 = 4;

/// Durable identity of one physical index.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedIndex {
    /// Index name (unique per table).
    pub name: String,
    /// Index kind tag (`KIND_*`).
    pub kind: u8,
    /// The interface parameters the tree was created with (config
    /// round-trip).
    pub config: SpGistConfig,
    /// World rectangle (meaningful for the PMR quadtree; zeroed otherwise).
    pub world: Rect,
    /// The backing tree's meta page.
    pub meta_page: PageId,
    /// Pages owned by the backing tree, in allocation order.
    pub pages: Vec<PageId>,
    /// Logical word count (suffix tree only; the tree's own item count is
    /// the suffix count).
    pub strings: u64,
}

impl Codec for PersistedIndex {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.kind.encode(out);
        self.config.encode(out);
        self.world.encode(out);
        self.meta_page.encode(out);
        self.pages.encode(out);
        self.strings.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(PersistedIndex {
            name: String::decode(buf)?,
            kind: u8::decode(buf)?,
            config: SpGistConfig::decode(buf)?,
            world: Rect::decode(buf)?,
            meta_page: PageId::decode(buf)?,
            pages: Vec::decode(buf)?,
            strings: u64::decode(buf)?,
        })
    }
}

/// Body of a [`CatalogChunk::TableMeta`] chunk: one table's counters, its
/// chunk directory (the first page of every row/heap segment), and every
/// index's durable identity.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMetaChunk {
    /// Table name (must match the name the root lists for this segment).
    pub name: String,
    /// Key type tag (0 varchar, 1 point, 2 segment).
    pub key_type: u8,
    /// Live records in the heap.
    pub heap_records: u64,
    /// Live rows (row directory entries that are `Some`).
    pub live_rows: u64,
    /// Distinct-values statistic at checkpoint time (a seed, not truth).
    pub distinct: u64,
    /// Total row-directory length; the chunk list must cover exactly this
    /// many entries ([`ROWS_PER_CHUNK`] per chunk, last chunk partial).
    pub rows_len: u64,
    /// First page of each row-directory chunk segment, in chunk order.
    pub row_chunks: Vec<PageId>,
    /// Total heap-directory length (pages owned by the heap file).
    pub heap_len: u64,
    /// First page of each heap-directory chunk segment, in chunk order.
    pub heap_chunks: Vec<PageId>,
    /// Every physical index on the table.
    pub indexes: Vec<PersistedIndex>,
}

impl Codec for TableMetaChunk {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.key_type.encode(out);
        self.heap_records.encode(out);
        self.live_rows.encode(out);
        self.distinct.encode(out);
        self.rows_len.encode(out);
        self.row_chunks.encode(out);
        self.heap_len.encode(out);
        self.heap_chunks.encode(out);
        self.indexes.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(TableMetaChunk {
            name: String::decode(buf)?,
            key_type: u8::decode(buf)?,
            heap_records: u64::decode(buf)?,
            live_rows: u64::decode(buf)?,
            distinct: u64::decode(buf)?,
            rows_len: u64::decode(buf)?,
            row_chunks: Vec::decode(buf)?,
            heap_len: u64::decode(buf)?,
            heap_chunks: Vec::decode(buf)?,
            indexes: Vec::decode(buf)?,
        })
    }
}

/// One self-describing piece of the chunked catalog.  Every chunk is stored
/// in its own page segment and carries the magic/version/tag header, so a
/// reader can never mistake one chunk kind (or catalog version) for another.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogChunk {
    /// The catalog root: the WAL position this catalog image corresponds to
    /// and, per table, the first page of its metadata segment.
    Root {
        /// Recovery skips log records below this LSN (already reflected in
        /// the pages) and replays everything at or above it.
        checkpoint_lsn: u64,
        /// `(table name, first page of the table's metadata segment)`.
        tables: Vec<(String, PageId)>,
    },
    /// One table's metadata (counters, chunk directory, indexes).
    TableMeta(TableMetaChunk),
    /// A run of row-directory entries: row id (dense index) → heap record,
    /// `None` once deleted.  All chunks but a table's last hold exactly
    /// [`ROWS_PER_CHUNK`] entries.
    Rows(Vec<Option<RecordId>>),
    /// A run of heap-directory page ids.  All chunks but a table's last
    /// hold exactly [`HEAP_IDS_PER_CHUNK`] ids.
    Heap(Vec<PageId>),
}

/// Encodes a chunk with its `magic | version | tag` header.
pub fn encode_chunk(chunk: &CatalogChunk) -> Vec<u8> {
    let mut out = Vec::new();
    CATALOG_MAGIC.encode(&mut out);
    CATALOG_VERSION.encode(&mut out);
    match chunk {
        CatalogChunk::Root {
            checkpoint_lsn,
            tables,
        } => {
            TAG_ROOT.encode(&mut out);
            checkpoint_lsn.encode(&mut out);
            tables.encode(&mut out);
        }
        CatalogChunk::TableMeta(meta) => {
            TAG_TABLE_META.encode(&mut out);
            meta.encode(&mut out);
        }
        CatalogChunk::Rows(rows) => {
            TAG_ROWS.encode(&mut out);
            rows.encode(&mut out);
        }
        CatalogChunk::Heap(pages) => {
            TAG_HEAP.encode(&mut out);
            pages.encode(&mut out);
        }
    }
    out
}

/// Decodes a chunk, validating the header and requiring every byte to be
/// consumed.  Bad magic, a foreign version (e.g. a v2 catalog), an unknown
/// tag, or trailing bytes all fail with [`StorageError::Corrupt`]; a
/// truncated body fails with the decoder's own error.
pub fn decode_chunk(bytes: &[u8]) -> StorageResult<CatalogChunk> {
    let mut buf = bytes;
    if u32::decode(&mut buf)? != CATALOG_MAGIC {
        return Err(StorageError::Corrupt(
            "page holds no catalog chunk (bad magic; not a Database file?)".into(),
        ));
    }
    let version = u8::decode(&mut buf)?;
    if version != CATALOG_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported catalog version {version} (this build reads v{CATALOG_VERSION}; \
             no migration — rebuild the database file)"
        )));
    }
    let tag = u8::decode(&mut buf)?;
    let chunk = match tag {
        TAG_ROOT => CatalogChunk::Root {
            checkpoint_lsn: u64::decode(&mut buf)?,
            tables: Vec::decode(&mut buf)?,
        },
        TAG_TABLE_META => CatalogChunk::TableMeta(TableMetaChunk::decode(&mut buf)?),
        TAG_ROWS => CatalogChunk::Rows(Vec::decode(&mut buf)?),
        TAG_HEAP => CatalogChunk::Heap(Vec::decode(&mut buf)?),
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown catalog chunk tag {other}"
            )))
        }
    };
    if !buf.is_empty() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after catalog chunk",
            buf.len()
        )));
    }
    Ok(chunk)
}

/// Where one table's catalog state lives on disk, as of the last successful
/// write.  Each inner `Vec<PageId>` is one segment (page chain).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TableLayout {
    /// Pages of the metadata segment.
    pub meta_pages: Vec<PageId>,
    /// Pages of each row-directory chunk segment, in chunk order.
    pub row_chunks: Vec<Vec<PageId>>,
    /// Pages of each heap-directory chunk segment, in chunk order.
    pub heap_chunks: Vec<Vec<PageId>>,
    /// The heap-directory *data* per chunk at the last checkpoint, kept to
    /// diff against: a heap chunk whose ids are unchanged is skipped.
    pub last_heap: Vec<Vec<PageId>>,
}

/// Where the whole catalog lives on disk.  `Database` carries one of these
/// between checkpoints so each checkpoint knows which pages to reuse.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct CatalogLayout {
    /// Pages of the root segment; the first is always [`CATALOG_ROOT`].
    pub root_pages: Vec<PageId>,
    /// Per-table layout, keyed by table name.
    pub tables: BTreeMap<String, TableLayout>,
}

impl CatalogLayout {
    /// A fresh layout for a just-created database: root segment at page 0,
    /// no tables.
    pub fn new_at_root(root: PageId) -> Self {
        CatalogLayout {
            root_pages: vec![root],
            tables: BTreeMap::new(),
        }
    }
}

/// The row-directory part of a checkpoint snapshot: either the whole
/// directory (new or wholly dirty table) or just the dirty chunks.
#[derive(Debug, Clone)]
pub(crate) enum RowsDelta {
    /// Rewrite every chunk from this full directory image.
    Full(Vec<Option<RecordId>>),
    /// Rewrite only these chunks: `(chunk index, chunk contents)`, sorted
    /// by ascending chunk index.
    Chunks(Vec<(u64, Vec<Option<RecordId>>)>),
}

/// Everything a checkpoint captured from one mutated table while its DML
/// guard was held.  Clean tables produce no snapshot and cost no writes.
#[derive(Debug, Clone)]
pub(crate) struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Key type tag.
    pub key_type: u8,
    /// Pages owned by the heap file, in allocation order.
    pub heap_pages: Vec<PageId>,
    /// Live records in the heap.
    pub heap_records: u64,
    /// Live rows.
    pub live_rows: u64,
    /// Distinct-values statistic.
    pub distinct: u64,
    /// Total row-directory length at snapshot time.
    pub rows_len: u64,
    /// Dirty row-directory content.
    pub rows: RowsDelta,
    /// Every physical index on the table.
    pub indexes: Vec<PersistedIndex>,
}

/// What one catalog update wrote (and skipped), for [`CheckpointStats`]
/// accounting and for the selective flush that follows.
///
/// [`CheckpointStats`]: spgist_storage::CheckpointStats
#[derive(Debug, Default)]
pub(crate) struct CatalogWriteOutcome {
    /// Row/heap chunks rewritten.
    pub chunks_written: u64,
    /// Row/heap chunks left untouched on disk (clean tables included).
    pub chunks_skipped: u64,
    /// Encoded catalog bytes written (chunks + metas + root).
    pub bytes_written: u64,
    /// Every page the update wrote through the pool — the set the caller
    /// must flush before deleting the checkpoint journal.
    pub written_pages: HashSet<PageId>,
}

/// The on-disk pages a catalog update may overwrite in place, given the
/// snapshots about to be applied: the root segment, plus each mutated
/// table's metadata segment, heap chunk segments, and dirty row chunk
/// segments.  These (and nothing more) need pre-imaging in the checkpoint
/// journal; pages the update *allocates* are fresh and pages it *frees* are
/// only published after the journal is deleted.
pub(crate) fn overwrite_targets(layout: &CatalogLayout, snaps: &[TableSnapshot]) -> Vec<PageId> {
    let mut targets: Vec<PageId> = layout.root_pages.clone();
    for snap in snaps {
        let Some(tl) = layout.tables.get(&snap.name) else {
            continue; // new table: every page is a fresh allocation
        };
        targets.extend(tl.meta_pages.iter().copied());
        targets.extend(tl.heap_chunks.iter().flatten().copied());
        match &snap.rows {
            RowsDelta::Full(_) => {
                targets.extend(tl.row_chunks.iter().flatten().copied());
            }
            RowsDelta::Chunks(dirty) => {
                for (idx, _) in dirty {
                    if let Some(seg) = tl.row_chunks.get(*idx as usize) {
                        targets.extend(seg.iter().copied());
                    }
                }
                // A shrunken directory frees trailing segments; freed pages
                // are not overwritten, so they need no pre-image.
            }
        }
    }
    targets
}

/// Writes `bytes` through the segment rooted at `pages[0]`, reusing the
/// pages in `pages` (extending or shrinking the chain as the payload
/// requires) and leaving `pages` naming exactly the segment's pages.  Page
/// contents go through the buffer pool; the caller decides when to flush.
fn write_segment(
    pool: &Arc<BufferPool>,
    pages: &mut Vec<PageId>,
    bytes: &[u8],
) -> StorageResult<()> {
    let fragments: Vec<&[u8]> = bytes.chunks(SEG_CHUNK).collect();
    debug_assert!(
        !fragments.is_empty(),
        "the chunk header makes every payload non-empty"
    );
    while pages.len() < fragments.len() {
        pages.push(pool.allocate_page()?);
    }
    while pages.len() > fragments.len() {
        let extra = pages.pop().expect("segment is longer than one fragment");
        pool.free_page(extra)?;
    }
    for (i, fragment) in fragments.iter().enumerate() {
        let next = pages.get(i + 1).copied().unwrap_or(CHAIN_END);
        let mut record = Vec::with_capacity(4 + fragment.len());
        next.encode(&mut record);
        record.extend_from_slice(fragment);
        pool.with_page_mut(pages[i], |p| {
            *p = Page::new();
            p.insert(&record).map(|_| ())
        })??;
    }
    Ok(())
}

/// Reads the segment rooted at `start`, returning the reassembled payload
/// and the segment's page list.  `visited` is shared across every segment
/// of one catalog read so aliased or cyclic chains fail loudly.
fn read_segment(
    pool: &Arc<BufferPool>,
    start: PageId,
    visited: &mut HashSet<PageId>,
) -> StorageResult<(Vec<u8>, Vec<PageId>)> {
    let corrupt = |msg: String| StorageError::Corrupt(msg);
    let mut payload = Vec::new();
    let mut pages = Vec::new();
    let mut cursor = start;
    while cursor != CHAIN_END {
        if !visited.insert(cursor) {
            return Err(corrupt(format!("catalog segment revisits page {cursor}")));
        }
        pages.push(cursor);
        let record = pool
            .with_page(cursor, |p| p.get(0).map(<[u8]>::to_vec))
            .map_err(|e| corrupt(format!("catalog page {cursor} unreadable: {e}")))?
            .map_err(|e| corrupt(format!("catalog page {cursor} holds no record: {e}")))?;
        let mut buf = record.as_slice();
        let next = PageId::decode(&mut buf)
            .map_err(|e| corrupt(format!("catalog page {cursor} truncated: {e}")))?;
        payload.extend_from_slice(buf);
        cursor = next;
    }
    Ok((payload, pages))
}

/// Keeps [`StorageError::Corrupt`] intact and wraps every other decode
/// failure in one, naming the piece that failed.
fn as_corrupt(e: StorageError, what: &str) -> StorageError {
    match e {
        c @ StorageError::Corrupt(_) => c,
        other => StorageError::Corrupt(format!("{what} does not decode: {other}")),
    }
}

fn write_tracked(
    pool: &Arc<BufferPool>,
    pages: &mut Vec<PageId>,
    bytes: &[u8],
    outcome: &mut CatalogWriteOutcome,
) -> StorageResult<()> {
    write_segment(pool, pages, bytes)?;
    outcome.bytes_written += bytes.len() as u64;
    outcome.written_pages.extend(pages.iter().copied());
    Ok(())
}

fn free_segment(pool: &Arc<BufferPool>, pages: Vec<PageId>) -> StorageResult<()> {
    for page in pages {
        pool.free_page(page)?;
    }
    Ok(())
}

/// Applies one checkpoint's catalog delta: drops tables no longer in
/// `live`, rewrites each snapshot's dirty row chunks / changed heap chunks
/// / metadata, and rewrites the root.  `layout` is updated in place to the
/// new page assignment.  Tables in `live` but not in `snaps` are untouched
/// — their segments (and the root's reference to them) survive as-is.
///
/// Ordering matters for crash-atomicity: the caller journals
/// [`overwrite_targets`] *before* this runs, flushes the written pages
/// after, and only then deletes the journal.  Frees go through the pool's
/// deferred `pending_free`, published after the journal deletion, so a
/// rollback to the previous catalog never finds its pages reused.
pub(crate) fn apply_catalog_update(
    pool: &Arc<BufferPool>,
    layout: &mut CatalogLayout,
    snaps: &[TableSnapshot],
    live: &BTreeSet<String>,
    checkpoint_lsn: u64,
) -> StorageResult<CatalogWriteOutcome> {
    let mut outcome = CatalogWriteOutcome::default();

    // Dropped tables: release every segment and forget the layout entry.
    let dropped: Vec<String> = layout
        .tables
        .keys()
        .filter(|name| !live.contains(*name))
        .cloned()
        .collect();
    for name in dropped {
        let tl = layout.tables.remove(&name).expect("key came from the map");
        free_segment(pool, tl.meta_pages)?;
        for seg in tl.row_chunks {
            free_segment(pool, seg)?;
        }
        for seg in tl.heap_chunks {
            free_segment(pool, seg)?;
        }
    }

    for snap in snaps {
        let tl = layout.tables.entry(snap.name.clone()).or_default();
        let chunk_count = snap.rows_len.div_ceil(ROWS_PER_CHUNK) as usize;

        // Row directory.  Shrink first (defensive: the executor's directory
        // never shrinks today, but a shorter snapshot must not leave stale
        // trailing chunks reachable), then rewrite the dirty chunks.
        while tl.row_chunks.len() > chunk_count {
            let seg = tl.row_chunks.pop().expect("len checked above");
            free_segment(pool, seg)?;
        }
        let written_before = outcome.chunks_written;
        match &snap.rows {
            RowsDelta::Full(rows) => {
                debug_assert_eq!(rows.len() as u64, snap.rows_len);
                for i in 0..chunk_count {
                    let lo = i * ROWS_PER_CHUNK as usize;
                    let hi = (lo + ROWS_PER_CHUNK as usize).min(rows.len());
                    if tl.row_chunks.len() == i {
                        tl.row_chunks.push(Vec::new());
                    }
                    let body = encode_chunk(&CatalogChunk::Rows(rows[lo..hi].to_vec()));
                    write_tracked(pool, &mut tl.row_chunks[i], &body, &mut outcome)?;
                    outcome.chunks_written += 1;
                }
            }
            RowsDelta::Chunks(dirty) => {
                for (idx, data) in dirty {
                    let i = *idx as usize;
                    if i >= chunk_count {
                        continue; // stale mark past a shrink
                    }
                    if i > tl.row_chunks.len() {
                        return Err(StorageError::Corrupt(format!(
                            "checkpoint snapshot for table {:?} skips row chunk {}",
                            snap.name,
                            tl.row_chunks.len()
                        )));
                    }
                    if i == tl.row_chunks.len() {
                        tl.row_chunks.push(Vec::new());
                    }
                    let body = encode_chunk(&CatalogChunk::Rows(data.clone()));
                    write_tracked(pool, &mut tl.row_chunks[i], &body, &mut outcome)?;
                    outcome.chunks_written += 1;
                }
            }
        }
        let rows_written = outcome.chunks_written - written_before;
        outcome.chunks_skipped += chunk_count as u64 - rows_written;

        // Heap directory: rewrite only chunks whose ids changed since the
        // last checkpoint (append-mostly, so usually just the final chunk).
        let heap_data: Vec<Vec<PageId>> = snap
            .heap_pages
            .chunks(HEAP_IDS_PER_CHUNK)
            .map(<[PageId]>::to_vec)
            .collect();
        while tl.heap_chunks.len() > heap_data.len() {
            let seg = tl.heap_chunks.pop().expect("len checked above");
            free_segment(pool, seg)?;
        }
        tl.last_heap.truncate(tl.heap_chunks.len());
        for (i, data) in heap_data.iter().enumerate() {
            if i < tl.heap_chunks.len() && tl.last_heap.get(i) == Some(data) {
                outcome.chunks_skipped += 1;
                continue;
            }
            if i == tl.heap_chunks.len() {
                tl.heap_chunks.push(Vec::new());
            }
            let body = encode_chunk(&CatalogChunk::Heap(data.clone()));
            write_tracked(pool, &mut tl.heap_chunks[i], &body, &mut outcome)?;
            outcome.chunks_written += 1;
        }
        tl.last_heap = heap_data;

        // Metadata segment: counters + the (possibly relocated) chunk
        // directory + index identities.
        let meta = TableMetaChunk {
            name: snap.name.clone(),
            key_type: snap.key_type,
            heap_records: snap.heap_records,
            live_rows: snap.live_rows,
            distinct: snap.distinct,
            rows_len: snap.rows_len,
            row_chunks: tl.row_chunks.iter().map(|seg| seg[0]).collect(),
            heap_len: snap.heap_pages.len() as u64,
            heap_chunks: tl.heap_chunks.iter().map(|seg| seg[0]).collect(),
            indexes: snap.indexes.clone(),
        };
        let body = encode_chunk(&CatalogChunk::TableMeta(meta));
        let mut meta_pages = std::mem::take(&mut tl.meta_pages);
        write_tracked(pool, &mut meta_pages, &body, &mut outcome)?;
        tl.meta_pages = meta_pages;
    }

    // Clean tables cost zero writes; count their chunks as skipped so the
    // stats show what incrementality saved.
    let snapped: BTreeSet<&str> = snaps.iter().map(|s| s.name.as_str()).collect();
    for (name, tl) in &layout.tables {
        if !snapped.contains(name.as_str()) {
            outcome.chunks_skipped += (tl.row_chunks.len() + tl.heap_chunks.len()) as u64;
        }
    }
    debug_assert!(
        live.iter().all(|name| layout.tables.contains_key(name)),
        "every live table must be reachable from the root"
    );

    // Root last: once it lands (journal deleted), the new chunk assignment
    // is the catalog.
    let root = CatalogChunk::Root {
        checkpoint_lsn,
        tables: layout
            .tables
            .iter()
            .map(|(name, tl)| (name.clone(), tl.meta_pages[0]))
            .collect(),
    };
    let body = encode_chunk(&root);
    let mut root_pages = std::mem::take(&mut layout.root_pages);
    write_tracked(pool, &mut root_pages, &body, &mut outcome)?;
    layout.root_pages = root_pages;
    debug_assert_eq!(layout.root_pages.first(), Some(&CATALOG_ROOT));
    Ok(outcome)
}

/// Durable state of one table as reassembled by [`read_catalog`]: heap
/// directory, row directory, statistics seeds, and every index.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PersistedTable {
    /// Table name.
    pub name: String,
    /// Key type tag (0 varchar, 1 point, 2 segment).
    pub key_type: u8,
    /// Pages owned by the heap file, in allocation order.
    pub heap_pages: Vec<PageId>,
    /// Live records in the heap.
    pub heap_records: u64,
    /// Live rows (row directory entries that are `Some`).
    pub live_rows: u64,
    /// Distinct-values statistic at checkpoint time (a seed, not truth).
    pub distinct: u64,
    /// Row directory: row id (dense index) → heap record, `None` once
    /// deleted.
    pub rows: Vec<Option<RecordId>>,
    /// Every physical index on the table.
    pub indexes: Vec<PersistedIndex>,
}

/// The whole catalog meta-table, reassembled from the chunked form.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct PersistedCatalog {
    /// The WAL position this catalog image corresponds to.
    pub checkpoint_lsn: u64,
    /// Every table in the database.
    pub tables: Vec<PersistedTable>,
}

/// Reads and validates the whole chunked catalog rooted at
/// [`CATALOG_ROOT`], returning the reassembled tables and the page layout
/// (for subsequent incremental rewrites).  Every failure — missing record,
/// bad pointer, foreign version, wrong chunk kind, chunk-count or
/// chunk-length mismatch, aliased segments — is reported as
/// [`StorageError::Corrupt`]: a damaged catalog must never be silently
/// misread.
pub(crate) fn read_catalog(
    pool: &Arc<BufferPool>,
) -> StorageResult<(PersistedCatalog, CatalogLayout)> {
    let corrupt = |msg: String| StorageError::Corrupt(msg);
    let mut visited = HashSet::new();
    let (root_bytes, root_pages) = read_segment(pool, CATALOG_ROOT, &mut visited)?;
    let root = decode_chunk(&root_bytes).map_err(|e| as_corrupt(e, "catalog root"))?;
    let CatalogChunk::Root {
        checkpoint_lsn,
        tables: roots,
    } = root
    else {
        return Err(corrupt("catalog root page holds a non-root chunk".into()));
    };

    let mut tables = Vec::with_capacity(roots.len());
    let mut layout_tables = BTreeMap::new();
    for (name, meta_start) in roots {
        let (meta_bytes, meta_pages) = read_segment(pool, meta_start, &mut visited)?;
        let meta = match decode_chunk(&meta_bytes)
            .map_err(|e| as_corrupt(e, &format!("metadata of table {name:?}")))?
        {
            CatalogChunk::TableMeta(meta) => meta,
            _ => {
                return Err(corrupt(format!(
                    "metadata segment of table {name:?} holds a non-metadata chunk"
                )))
            }
        };
        if meta.name != name {
            return Err(corrupt(format!(
                "catalog root names table {name:?} but its metadata names {:?}",
                meta.name
            )));
        }

        let expected_chunks = meta.rows_len.div_ceil(ROWS_PER_CHUNK) as usize;
        if meta.row_chunks.len() != expected_chunks {
            return Err(corrupt(format!(
                "table {name:?} declares {} rows but lists {} row chunks (expected {})",
                meta.rows_len,
                meta.row_chunks.len(),
                expected_chunks
            )));
        }
        let mut rows = Vec::with_capacity(meta.rows_len as usize);
        let mut row_chunks = Vec::with_capacity(expected_chunks);
        for (i, &start) in meta.row_chunks.iter().enumerate() {
            let (bytes, pages) = read_segment(pool, start, &mut visited)?;
            let data = match decode_chunk(&bytes)
                .map_err(|e| as_corrupt(e, &format!("row chunk {i} of table {name:?}")))?
            {
                CatalogChunk::Rows(data) => data,
                _ => {
                    return Err(corrupt(format!(
                        "row chunk {i} of table {name:?} holds a non-row chunk"
                    )))
                }
            };
            let lo = i as u64 * ROWS_PER_CHUNK;
            let expected_len = (meta.rows_len - lo).min(ROWS_PER_CHUNK) as usize;
            if data.len() != expected_len {
                return Err(corrupt(format!(
                    "row chunk {i} of table {name:?} holds {} entries (expected {expected_len})",
                    data.len()
                )));
            }
            rows.extend(data);
            row_chunks.push(pages);
        }

        let expected_heap_chunks = (meta.heap_len as usize).div_ceil(HEAP_IDS_PER_CHUNK);
        if meta.heap_chunks.len() != expected_heap_chunks {
            return Err(corrupt(format!(
                "table {name:?} declares {} heap pages but lists {} heap chunks (expected {})",
                meta.heap_len,
                meta.heap_chunks.len(),
                expected_heap_chunks
            )));
        }
        let mut heap_pages = Vec::with_capacity(meta.heap_len as usize);
        let mut heap_chunks = Vec::with_capacity(expected_heap_chunks);
        let mut last_heap = Vec::with_capacity(expected_heap_chunks);
        for (i, &start) in meta.heap_chunks.iter().enumerate() {
            let (bytes, pages) = read_segment(pool, start, &mut visited)?;
            let data = match decode_chunk(&bytes)
                .map_err(|e| as_corrupt(e, &format!("heap chunk {i} of table {name:?}")))?
            {
                CatalogChunk::Heap(data) => data,
                _ => {
                    return Err(corrupt(format!(
                        "heap chunk {i} of table {name:?} holds a non-heap chunk"
                    )))
                }
            };
            let lo = i * HEAP_IDS_PER_CHUNK;
            let expected_len = (meta.heap_len as usize - lo).min(HEAP_IDS_PER_CHUNK);
            if data.len() != expected_len {
                return Err(corrupt(format!(
                    "heap chunk {i} of table {name:?} holds {} ids (expected {expected_len})",
                    data.len()
                )));
            }
            heap_pages.extend_from_slice(&data);
            heap_chunks.push(pages);
            last_heap.push(data);
        }

        tables.push(PersistedTable {
            name: name.clone(),
            key_type: meta.key_type,
            heap_pages,
            heap_records: meta.heap_records,
            live_rows: meta.live_rows,
            distinct: meta.distinct,
            rows,
            indexes: meta.indexes,
        });
        layout_tables.insert(
            name,
            TableLayout {
                meta_pages,
                row_chunks,
                heap_chunks,
                last_heap,
            },
        );
    }

    Ok((
        PersistedCatalog {
            checkpoint_lsn,
            tables,
        },
        CatalogLayout {
            root_pages,
            tables: layout_tables,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgist_core::{ClusteringPolicy, NodeShrink, PathShrink};

    fn sample_config() -> SpGistConfig {
        SpGistConfig {
            partitions: 27,
            bucket_size: 16,
            resolution: 128,
            path_shrink: PathShrink::TreeShrink,
            node_shrink: NodeShrink::OmitEmpty,
            split_once: false,
            clustering: ClusteringPolicy::ParentFirst,
        }
    }

    fn sample_rows(n: usize) -> Vec<Option<RecordId>> {
        (0..n)
            .map(|i| (i % 7 != 0).then(|| RecordId::new((i / 100) as PageId, (i % 100) as u16)))
            .collect()
    }

    fn sample_snapshot(name: &str, rows: usize) -> TableSnapshot {
        let data = sample_rows(rows);
        TableSnapshot {
            name: name.to_string(),
            key_type: 1,
            heap_pages: (0..rows / 50 + 1).map(|i| 1000 + i as PageId).collect(),
            heap_records: data.iter().flatten().count() as u64,
            live_rows: data.iter().flatten().count() as u64,
            distinct: rows as u64 / 2,
            rows_len: rows as u64,
            rows: RowsDelta::Full(data),
            indexes: vec![PersistedIndex {
                name: format!("ix-{name}"),
                kind: KIND_TRIE,
                config: sample_config(),
                world: Rect::new(0.0, 0.0, 100.0, 100.0),
                meta_page: 7,
                pages: vec![7, 8, 9],
                strings: 0,
            }],
        }
    }

    fn live(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn every_chunk_variant_roundtrips() {
        let chunks = [
            CatalogChunk::Root {
                checkpoint_lsn: 41,
                tables: vec![("a".into(), 3), ("b".into(), 9)],
            },
            CatalogChunk::TableMeta(TableMetaChunk {
                name: "t".into(),
                key_type: 2,
                heap_records: 10,
                live_rows: 9,
                distinct: 4,
                rows_len: 10,
                row_chunks: vec![5],
                heap_len: 1,
                heap_chunks: vec![6],
                indexes: vec![],
            }),
            CatalogChunk::Rows(sample_rows(10)),
            CatalogChunk::Heap(vec![1, 2, 3]),
        ];
        for chunk in chunks {
            assert_eq!(decode_chunk(&encode_chunk(&chunk)).unwrap(), chunk);
        }
    }

    #[test]
    fn foreign_versions_and_tags_fail_with_corrupt() {
        let good = encode_chunk(&CatalogChunk::Heap(vec![1]));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_chunk(&bad), Err(StorageError::Corrupt(_))));
        // A v2 catalog: same magic, version byte 2.
        let mut v2 = good.clone();
        v2[4] = 2;
        match decode_chunk(&v2) {
            Err(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("unsupported catalog version 2"), "{msg}")
            }
            other => panic!("v2 must be Corrupt, got {other:?}"),
        }
        // Unknown tag.
        let mut tag = good.clone();
        tag[5] = 99;
        assert!(matches!(decode_chunk(&tag), Err(StorageError::Corrupt(_))));
        // Trailing garbage.
        let mut long = good;
        long.push(0);
        assert!(matches!(decode_chunk(&long), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn catalog_roundtrips_and_untouched_tables_cost_zero_writes() {
        let pool = BufferPool::in_memory();
        let root = pool.allocate_page().unwrap();
        assert_eq!(root, CATALOG_ROOT);
        let mut layout = CatalogLayout::new_at_root(root);

        // Two tables, one big enough to chunk (3 chunks).
        let snaps = vec![sample_snapshot("small", 10), sample_snapshot("big", 2_500)];
        let out =
            apply_catalog_update(&pool, &mut layout, &snaps, &live(&["small", "big"]), 41).unwrap();
        assert_eq!(out.chunks_written, 4 + 2); // 1 + 3 row chunks, 2 heap chunks
        let (read, read_layout) = read_catalog(&pool).unwrap();
        assert_eq!(read.checkpoint_lsn, 41);
        assert_eq!(read.tables.len(), 2);
        let big = read.tables.iter().find(|t| t.name == "big").unwrap();
        assert_eq!(big.rows, sample_rows(2_500));
        assert_eq!(read_layout, layout);

        // Rewrite only chunk 1 of "big": the small table and the other
        // chunks cost zero page writes.
        let mut delta = sample_snapshot("big", 2_500);
        let patched: Vec<Option<RecordId>> = (0..1000).map(|_| None).collect();
        delta.rows = RowsDelta::Chunks(vec![(1, patched.clone())]);
        let before = layout.clone();
        let out = apply_catalog_update(&pool, &mut layout, &[delta], &live(&["small", "big"]), 42)
            .unwrap();
        assert_eq!(out.chunks_written, 1);
        // big: 2 untouched row chunks + 1 unchanged heap chunk; small
        // (clean): 1 row chunk + 1 heap chunk.
        assert_eq!(out.chunks_skipped, 2 + 1 + 2);
        let small_pages: Vec<PageId> = before.tables["small"]
            .meta_pages
            .iter()
            .chain(before.tables["small"].row_chunks.iter().flatten())
            .copied()
            .collect();
        for p in small_pages {
            assert!(
                !out.written_pages.contains(&p),
                "untouched table page {p} was written"
            );
        }
        let (read, _) = read_catalog(&pool).unwrap();
        let big = read.tables.iter().find(|t| t.name == "big").unwrap();
        assert_eq!(big.rows[1000..2000], patched[..]);
        assert_eq!(big.rows[..1000], sample_rows(2_500)[..1000]);
        assert_eq!(read.checkpoint_lsn, 42);
    }

    #[test]
    fn dropping_a_table_frees_its_segments() {
        let pool = BufferPool::in_memory();
        let root = pool.allocate_page().unwrap();
        let mut layout = CatalogLayout::new_at_root(root);
        let snaps = vec![sample_snapshot("keep", 10), sample_snapshot("drop", 2_500)];
        apply_catalog_update(&pool, &mut layout, &snaps, &live(&["keep", "drop"]), 1).unwrap();

        let free_before = pool.free_page_count();
        apply_catalog_update(&pool, &mut layout, &[], &live(&["keep"]), 2).unwrap();
        pool.flush_all().unwrap(); // publish the deferred frees
        assert!(pool.free_page_count() > free_before);
        assert!(!layout.tables.contains_key("drop"));
        let (read, _) = read_catalog(&pool).unwrap();
        assert_eq!(read.tables.len(), 1);
        assert_eq!(read.tables[0].name, "keep");
    }

    #[test]
    fn torn_catalog_fails_with_corrupt() {
        let pool = BufferPool::in_memory();
        let root = pool.allocate_page().unwrap();
        let mut layout = CatalogLayout::new_at_root(root);
        let snaps = vec![sample_snapshot("t", 2_500)];
        apply_catalog_update(&pool, &mut layout, &snaps, &live(&["t"]), 1).unwrap();

        // Zero a row-chunk page: the read must fail loudly.
        let victim = layout.tables["t"].row_chunks[1][0];
        pool.with_page_mut(victim, |p| *p = Page::new()).unwrap();
        assert!(matches!(read_catalog(&pool), Err(StorageError::Corrupt(_))));
        // Zero the root page: same.
        pool.with_page_mut(root, |p| *p = Page::new()).unwrap();
        assert!(matches!(read_catalog(&pool), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn growing_a_table_appends_chunks_without_rewriting_old_ones() {
        let pool = BufferPool::in_memory();
        let root = pool.allocate_page().unwrap();
        let mut layout = CatalogLayout::new_at_root(root);
        apply_catalog_update(
            &pool,
            &mut layout,
            &[sample_snapshot("t", 1_500)],
            &live(&["t"]),
            1,
        )
        .unwrap();
        let chunk0_pages = layout.tables["t"].row_chunks[0].clone();

        // Grow to 2_500 rows: chunk 1 changed (was partial), chunk 2 is
        // new; chunk 0 is untouched.
        let full = sample_rows(2_500);
        let mut snap = sample_snapshot("t", 2_500);
        snap.rows = RowsDelta::Chunks(vec![
            (1, full[1000..2000].to_vec()),
            (2, full[2000..].to_vec()),
        ]);
        let out = apply_catalog_update(&pool, &mut layout, &[snap], &live(&["t"]), 2).unwrap();
        for p in &chunk0_pages {
            assert!(!out.written_pages.contains(p), "chunk 0 page {p} rewritten");
        }
        let (read, _) = read_catalog(&pool).unwrap();
        assert_eq!(read.tables[0].rows, full);
    }
}
