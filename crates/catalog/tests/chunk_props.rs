//! Property tests for the chunked catalog codec (SPGC v3).
//!
//! Mirrors `wal/tests/record_props.rs`: a deterministic generator produces
//! random chunks of every [`CatalogChunk`] variant and the tests assert the
//! invariants the incremental checkpointer and crash recovery lean on:
//!
//! * encode → decode is the identity, and re-encoding the decoded chunk
//!   reproduces the original bytes bit-exactly (canonical encoding),
//! * every strict prefix of an encoded chunk is rejected (a torn segment
//!   write can never decode as a shorter valid chunk),
//! * trailing garbage is rejected (full-consumption decoding),
//! * foreign version bytes and unknown chunk tags are rejected — a v2
//!   catalog or a page from another subsystem fails open with `Corrupt`
//!   instead of being misread.

use spgist_catalog::durable::{
    decode_chunk, encode_chunk, CatalogChunk, PersistedIndex, TableMetaChunk, CATALOG_VERSION,
};
use spgist_core::{ClusteringPolicy, NodeShrink, PathShrink, SpGistConfig};
use spgist_datagen::rng::DetRng;
use spgist_indexes::Rect;
use spgist_storage::RecordId;

fn random_name(rng: &mut DetRng) -> String {
    match rng.gen_range(0u32..4) {
        0 => String::new(),
        1 => "таблица-δ".to_string(),
        _ => {
            let len = rng.gen_range(1u32..24) as usize;
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0u32..26) as u8) as char)
                .collect()
        }
    }
}

fn random_config(rng: &mut DetRng) -> SpGistConfig {
    SpGistConfig {
        partitions: rng.gen_range(2u32..64),
        bucket_size: rng.gen_range(1u32..128) as usize,
        resolution: rng.gen_range(1u32..512),
        path_shrink: match rng.gen_range(0u32..3) {
            0 => PathShrink::NeverShrink,
            1 => PathShrink::LeafShrink,
            _ => PathShrink::TreeShrink,
        },
        node_shrink: if rng.gen_range(0u32..2) == 0 {
            NodeShrink::KeepEmpty
        } else {
            NodeShrink::OmitEmpty
        },
        split_once: rng.gen_range(0u32..2) == 0,
        clustering: match rng.gen_range(0u32..3) {
            0 => ClusteringPolicy::ParentFirst,
            1 => ClusteringPolicy::FirstFit,
            _ => ClusteringPolicy::NewPagePerNode,
        },
    }
}

fn random_index(rng: &mut DetRng) -> PersistedIndex {
    let pages = (0..rng.gen_range(0u32..8))
        .map(|_| rng.next_u64() as u32)
        .collect();
    PersistedIndex {
        name: random_name(rng),
        kind: rng.gen_range(0u32..5) as u8,
        config: random_config(rng),
        world: Rect::new(-1.5, -2.5, 100.25, 200.125),
        meta_page: rng.next_u64() as u32,
        pages,
        strings: rng.next_u64(),
    }
}

fn random_rows(rng: &mut DetRng) -> Vec<Option<RecordId>> {
    let len = rng.gen_range(0u32..64) as usize;
    (0..len)
        .map(|_| {
            if rng.gen_range(0u32..5) == 0 {
                None
            } else {
                Some(RecordId::new(
                    rng.gen_range(0u32..1 << 20),
                    rng.gen_range(0u32..256) as u16,
                ))
            }
        })
        .collect()
}

/// One random chunk; `variant` cycles so every test covers all four kinds.
fn random_chunk(rng: &mut DetRng, variant: u64) -> CatalogChunk {
    match variant % 4 {
        0 => CatalogChunk::Root {
            checkpoint_lsn: rng.next_u64(),
            tables: (0..rng.gen_range(0u32..6))
                .map(|_| (random_name(rng), rng.next_u64() as u32))
                .collect(),
        },
        1 => CatalogChunk::TableMeta(TableMetaChunk {
            name: random_name(rng),
            key_type: rng.gen_range(0u32..3) as u8,
            heap_records: rng.next_u64(),
            live_rows: rng.next_u64(),
            distinct: rng.next_u64(),
            rows_len: rng.next_u64(),
            row_chunks: (0..rng.gen_range(0u32..10))
                .map(|_| rng.next_u64() as u32)
                .collect(),
            heap_len: rng.next_u64(),
            heap_chunks: (0..rng.gen_range(0u32..10))
                .map(|_| rng.next_u64() as u32)
                .collect(),
            indexes: (0..rng.gen_range(0u32..4))
                .map(|_| random_index(rng))
                .collect(),
        }),
        2 => CatalogChunk::Rows(random_rows(rng)),
        _ => CatalogChunk::Heap(
            (0..rng.gen_range(0u32..48))
                .map(|_| rng.next_u64() as u32)
                .collect(),
        ),
    }
}

#[test]
fn every_chunk_variant_round_trips_bit_exactly() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5350_4743] {
        let mut rng = DetRng::seed_from_u64(seed);
        for i in 0..500u64 {
            let chunk = random_chunk(&mut rng, i);
            let bytes = encode_chunk(&chunk);
            let decoded = decode_chunk(&bytes).expect("encoded chunk must decode");
            assert_eq!(
                decoded, chunk,
                "round-trip mismatch (seed {seed}, iter {i})"
            );
            let reencoded = encode_chunk(&decoded);
            assert_eq!(
                reencoded, bytes,
                "re-encoding is not canonical (seed {seed}, iter {i})"
            );
        }
    }
}

#[test]
fn every_strict_prefix_of_every_chunk_is_rejected() {
    let mut rng = DetRng::seed_from_u64(42);
    for i in 0..120u64 {
        let chunk = random_chunk(&mut rng, i);
        let bytes = encode_chunk(&chunk);
        for cut in 0..bytes.len() {
            assert!(
                decode_chunk(&bytes[..cut]).is_err(),
                "prefix of length {cut}/{} decoded (iter {i})",
                bytes.len()
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut rng = DetRng::seed_from_u64(7);
    for i in 0..100u64 {
        let chunk = random_chunk(&mut rng, i);
        let mut bytes = encode_chunk(&chunk);
        bytes.push(rng.gen_range(0u32..256) as u8);
        assert!(
            decode_chunk(&bytes).is_err(),
            "chunk with trailing byte decoded (iter {i})"
        );
    }
}

#[test]
fn foreign_versions_are_rejected() {
    let mut rng = DetRng::seed_from_u64(99);
    for i in 0..4u64 {
        let bytes = encode_chunk(&random_chunk(&mut rng, i));
        for version in 0..=u8::MAX {
            if version == CATALOG_VERSION {
                continue;
            }
            let mut tampered = bytes.clone();
            tampered[4] = version;
            let err = decode_chunk(&tampered).expect_err("foreign version decoded");
            if version == 2 {
                // The v2 → v3 break is a hard no-migration boundary; the
                // error must say so.
                assert!(
                    err.to_string().contains("unsupported catalog version 2"),
                    "v2 error unhelpful: {err}"
                );
            }
        }
    }
}

#[test]
fn unknown_chunk_tags_are_rejected() {
    let mut rng = DetRng::seed_from_u64(1234);
    for i in 0..4u64 {
        let bytes = encode_chunk(&random_chunk(&mut rng, i));
        for tag in (0u8..=u8::MAX).filter(|t| !(1..=4).contains(t)) {
            let mut tampered = bytes.clone();
            tampered[5] = tag;
            assert!(
                decode_chunk(&tampered).is_err(),
                "unknown tag {tag} decoded (variant {i})"
            );
        }
    }
}
