//! Write-ahead logging with group commit.
//!
//! The paper's SP-GiST trees live inside PostgreSQL and inherit its WAL:
//! an acknowledged `INSERT` survives a crash because its redo record was
//! fsynced before the acknowledgment, and recovery replays the log over the
//! last checkpoint.  This crate gives the workspace's executor the same
//! property from scratch:
//!
//! * [`record`] — **logical redo records** ([`WalRecord`]): table-level
//!   `INSERT` / `DELETE` / batch / DDL statements, re-executable because the
//!   executor assigns row ids deterministically, plus (since v3 segments)
//!   transaction control records — `BeginTxn`/`CommitTxn`/`AbortTxn` — and a
//!   [`TxnId`] on every DML record so recovery can drop loser transactions,
//! * [`log`] — the **append-only segmented log** ([`Wal`]): per-record
//!   CRC-32 framing, torn-tail detection on open, checkpoint-driven
//!   rotation ([`Wal::rotate`]) and truncation ([`Wal::prune`]),
//! * group commit: writers [`Wal::submit`] and then [`Wal::wait_durable`]
//!   while a dedicated flusher thread batches one `fsync` per group
//!   ([`WalConfig::max_wait`] / [`WalConfig::max_batch`]; `max_batch = 1`
//!   degenerates to a per-commit fsync, the baseline the bench suite
//!   compares against),
//! * [`crc`] — a dependency-free CRC-32 (the build environment is offline).
//!
//! The catalog layer (`spgist-catalog`) owns the integration: it logs
//! before acknowledging DML, replays surviving records on open, and turns
//! `checkpoint()` into the log-truncation point.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod log;
pub mod record;

pub use crc::crc32;
pub use log::{Wal, WalConfig};
pub use record::{Lsn, TxnId, WalRecord, AUTOCOMMIT};

#[cfg(test)]
mod tests {
    use super::*;
    use spgist_storage::StorageError;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "spgist-wal-{tag}-{}-{}",
                std::process::id(),
                UNIQUE.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn prefix(&self) -> PathBuf {
            self.0.join("db.wal")
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn insert(table: &str, row: u64) -> WalRecord {
        WalRecord::Insert {
            table: table.into(),
            row,
            datum: format!("datum-{row}").into_bytes(),
            txn: AUTOCOMMIT,
        }
    }

    fn append_n(wal: &Wal, n: u64) {
        for i in 0..n {
            wal.append(&insert("t", i)).unwrap();
        }
    }

    fn reopen_records(prefix: &PathBuf, checkpoint: Lsn) -> Vec<(Lsn, WalRecord)> {
        let (wal, records) = Wal::open(prefix, WalConfig::default(), checkpoint).unwrap();
        drop(wal);
        records
    }

    #[test]
    fn append_and_reopen_recovers_every_record() {
        let dir = TempDir::new("roundtrip");
        {
            let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
            append_n(&wal, 10);
            assert_eq!(wal.next_lsn(), 10);
            assert_eq!(wal.durable_lsn(), 10);
        }
        let records = reopen_records(&dir.prefix(), 0);
        assert_eq!(records.len(), 10);
        for (i, (lsn, record)) in records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(*record, insert("t", i as u64));
        }
    }

    #[test]
    fn truncation_at_every_byte_recovers_exactly_a_record_prefix() {
        // The acceptance property at the byte level: chop the (single
        // segment) log at *every* possible length; reopen must recover
        // exactly the records wholly below the cut — never an error, never
        // a partial record, never a record past the cut.
        let dir = TempDir::new("tear");
        let mut boundaries = vec![16u64]; // header end
        {
            let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
            for i in 0..6 {
                wal.append(&insert("t", i)).unwrap();
                let path = segment_1(&dir);
                boundaries.push(std::fs::metadata(path).unwrap().len());
            }
        }
        let full = std::fs::read(segment_1(&dir)).unwrap();
        for cut in 16..=full.len() {
            std::fs::write(segment_1(&dir), &full[..cut]).unwrap();
            let expected = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            let records = reopen_records(&dir.prefix(), 0);
            assert_eq!(
                records.len(),
                expected,
                "cut at byte {cut} must yield the longest whole-record prefix"
            );
            for (i, (lsn, record)) in records.iter().enumerate() {
                assert_eq!(*lsn, i as u64);
                assert_eq!(*record, insert("t", i as u64));
            }
        }
    }

    fn segment_1(dir: &TempDir) -> PathBuf {
        dir.0.join("db.wal.000001")
    }

    #[test]
    fn garbage_tail_is_dropped_and_appends_resume_cleanly() {
        let dir = TempDir::new("garbage");
        {
            let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
            append_n(&wal, 3);
        }
        // Simulate a torn in-flight record: random bytes past the last sync.
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(segment_1(&dir))
            .unwrap();
        file.write_all(&[0x5A; 37]).unwrap();
        drop(file);
        {
            let (wal, records) = Wal::open(dir.prefix(), WalConfig::default(), 0).unwrap();
            assert_eq!(records.len(), 3, "garbage tail must be dropped");
            // The tail was truncated: appends land where record 3 belongs.
            assert_eq!(wal.append(&insert("t", 3)).unwrap(), 3);
        }
        let records = reopen_records(&dir.prefix(), 0);
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn corruption_in_a_sealed_segment_fails_corrupt() {
        let dir = TempDir::new("sealed");
        {
            let wal = Wal::create(
                dir.prefix(),
                WalConfig {
                    segment_bytes: 64, // force rotation nearly every batch
                    ..WalConfig::default()
                },
            )
            .unwrap();
            append_n(&wal, 20);
            assert!(wal.segment_count() > 2, "tiny segments must have rotated");
        }
        // Flip one payload byte in the *first* segment: that segment is
        // sealed, so this is corruption, not a torn tail.
        let path = segment_1(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(dir.prefix(), WalConfig::default(), 0) {
            Err(StorageError::Corrupt(_)) => {}
            other => panic!("sealed-segment damage must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rotate_and_prune_truncate_the_log() {
        let dir = TempDir::new("prune");
        let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
        append_n(&wal, 5);
        let cut = wal.rotate().unwrap();
        assert_eq!(cut, 5);
        assert_eq!(wal.segment_count(), 2);
        wal.prune(cut).unwrap();
        assert_eq!(wal.segment_count(), 1);
        // Records after the cut land in the new segment and survive reopen
        // with correct LSNs.
        append_n(&wal, 2); // lsns 5, 6 (append_n re-numbers rows from 0; lsns advance)
        drop(wal);
        let (wal, records) = Wal::open(dir.prefix(), WalConfig::default(), cut).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 5);
        assert_eq!(records[1].0, 6);
        assert_eq!(wal.next_lsn(), 7);
    }

    #[test]
    fn rotate_on_an_empty_log_is_stable() {
        let dir = TempDir::new("empty-rotate");
        let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
        assert_eq!(wal.rotate().unwrap(), 0);
        assert_eq!(wal.rotate().unwrap(), 0);
        assert_eq!(wal.segment_count(), 1, "empty rotations allocate nothing");
        wal.prune(0).unwrap();
        append_n(&wal, 1);
        let cut = wal.rotate().unwrap();
        assert_eq!(cut, 1);
        wal.prune(cut).unwrap();
        assert_eq!(wal.segment_count(), 1);
    }

    #[test]
    fn checkpoint_lsn_outside_the_log_is_corrupt() {
        let dir = TempDir::new("coverage");
        {
            let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
            append_n(&wal, 3);
        }
        // Catalog claims a checkpoint past the log's end: acked records are
        // missing.
        assert!(matches!(
            Wal::open(dir.prefix(), WalConfig::default(), 99),
            Err(StorageError::Corrupt(_))
        ));
        // Catalog checkpoint of 0 is inside [0, 3]: fine.
        assert!(Wal::open(dir.prefix(), WalConfig::default(), 0).is_ok());
    }

    #[test]
    fn missing_log_with_nonzero_checkpoint_is_corrupt() {
        let dir = TempDir::new("missing");
        assert!(matches!(
            Wal::open(dir.prefix(), WalConfig::default(), 7),
            Err(StorageError::Corrupt(_))
        ));
        // With a zero checkpoint an empty log is acceptable (fresh file).
        let (wal, records) = Wal::open(dir.prefix(), WalConfig::default(), 0).unwrap();
        assert!(records.is_empty());
        drop(wal);
    }

    #[test]
    fn group_commit_batches_concurrent_writers_into_fewer_syncs() {
        let dir = TempDir::new("group");
        let wal = Arc::new(
            Wal::create(
                dir.prefix(),
                WalConfig {
                    max_wait: std::time::Duration::from_millis(2),
                    max_batch: 64,
                    ..WalConfig::default()
                },
            )
            .unwrap(),
        );
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 25;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        wal.append(&insert("t", w * PER_WRITER + i)).unwrap();
                    }
                });
            }
        });
        let commits = WRITERS * PER_WRITER;
        assert_eq!(wal.durable_lsn(), commits);
        assert_eq!(wal.written_count(), commits);
        assert!(
            wal.sync_count() < commits,
            "group commit must amortize syncs: {} syncs for {commits} commits",
            wal.sync_count()
        );
        drop(wal);
        let records = reopen_records(&dir.prefix(), 0);
        assert_eq!(records.len(), commits as usize);
    }

    #[test]
    fn per_commit_mode_syncs_once_per_record() {
        let dir = TempDir::new("percommit");
        let wal = Wal::create(dir.prefix(), WalConfig::per_commit()).unwrap();
        append_n(&wal, 10);
        assert_eq!(wal.sync_count(), 10, "max_batch = 1 means one fsync each");
    }

    #[test]
    fn lone_headerless_segment_is_a_fresh_empty_log() {
        // A crash during the very first `Wal::create` — after the segment
        // file appeared but before its 16-byte header was synced — leaves
        // a lone sub-header file.  With nothing checkpointed that is an
        // empty log, not corruption.
        let dir = TempDir::new("lone-headerless");
        std::fs::write(segment_1(&dir), [0xAB; 7]).unwrap();
        let (wal, records) = Wal::open(dir.prefix(), WalConfig::default(), 0).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.next_lsn(), 0);
        append_n(&wal, 2);
        drop(wal);
        assert_eq!(reopen_records(&dir.prefix(), 0).len(), 2);

        // With a *nonzero* checkpoint the same file really is missing
        // acknowledged records: corrupt, exactly as before.
        std::fs::write(segment_1(&dir), [0xAB; 7]).unwrap();
        assert!(matches!(
            Wal::open(dir.prefix(), WalConfig::default(), 5),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn wal_poison_surfaces_through_health() {
        let dir = TempDir::new("health");
        let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
        append_n(&wal, 2);
        assert!(wal.health().is_ok());
        wal.fail_for_test("injected flusher failure");
        assert!(wal.health().is_err(), "poison is visible to health checks");
        assert!(
            wal.append(&insert("t", 2)).is_err(),
            "a poisoned log accepts nothing"
        );
    }

    #[test]
    fn create_removes_stale_segments() {
        let dir = TempDir::new("stale");
        {
            let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
            append_n(&wal, 4);
        }
        {
            let wal = Wal::create(dir.prefix(), WalConfig::default()).unwrap();
            assert_eq!(wal.next_lsn(), 0, "create starts a fresh history");
        }
        let records = reopen_records(&dir.prefix(), 0);
        assert!(records.is_empty());
    }
}
