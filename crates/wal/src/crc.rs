//! CRC-32 over record payloads.
//!
//! The implementation lives in [`spgist_storage::crc`] (the checkpoint
//! pre-image journal checksums with the same polynomial); this module
//! re-exports it so WAL code and its historical imports keep working.

pub use spgist_storage::crc::crc32;
