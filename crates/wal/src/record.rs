//! Logical redo records.
//!
//! The WAL is **logical**: each record names a table-level statement
//! (`INSERT`, `DELETE`, a DDL statement), not page images.  Recovery
//! re-executes the statement against the reopened executor state, which
//! works because the executor's row ids are deterministic — an insert always
//! assigns `rows.len()` — so a redo record carrying its assigned row id can
//! verify it lands exactly where the original did.
//!
//! Key values travel as the executor's own record encoding (opaque
//! `Vec<u8>` here; the catalog layer encodes and decodes them), keeping this
//! crate independent of the datum types above it.

use spgist_storage::{Codec, StorageError, StorageResult};

/// A log sequence number: records are numbered densely from 0 across the
/// whole log, so `lsn` doubles as "number of records ever appended before
/// this one".
pub type Lsn = u64;

const TAG_INSERT: u8 = 0;
const TAG_INSERT_MANY: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_CREATE_TABLE: u8 = 3;
const TAG_DROP_TABLE: u8 = 4;
const TAG_CREATE_INDEX: u8 = 5;
const TAG_DROP_INDEX: u8 = 6;

/// One logical redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One row inserted into `table`, assigned row id `row`; `datum` is the
    /// executor's record encoding of the key value.
    Insert {
        /// Target table name.
        table: String,
        /// The row id the insert assigned (`rows.len()` at execution).
        row: u64,
        /// Encoded key value (the executor's heap record bytes).
        datum: Vec<u8>,
    },
    /// A whole `insert_many` batch as **one** record: rows
    /// `first_row .. first_row + datums.len()` in input order.  Logged as a
    /// unit so recovery reproduces the batch's all-or-nothing visibility.
    InsertMany {
        /// Target table name.
        table: String,
        /// Row id assigned to the first value of the batch.
        first_row: u64,
        /// Encoded key values in input order.
        datums: Vec<Vec<u8>>,
    },
    /// Row `row` deleted from `table`.
    Delete {
        /// Target table name.
        table: String,
        /// The deleted row id.
        row: u64,
    },
    /// `CREATE TABLE` (key type as the catalog's stable tag).
    CreateTable {
        /// New table name.
        table: String,
        /// Key type tag (0 varchar, 1 point, 2 segment).
        key_type: u8,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Dropped table name.
        table: String,
    },
    /// `CREATE INDEX`; `spec` is the catalog layer's encoding of the index
    /// specification (kind tag plus parameters).
    CreateIndex {
        /// Table the index is built on.
        table: String,
        /// Index name.
        index: String,
        /// Encoded index specification.
        spec: Vec<u8>,
    },
    /// `DROP INDEX`.
    DropIndex {
        /// Table the index belonged to.
        table: String,
        /// Dropped index name.
        index: String,
    },
}

impl WalRecord {
    /// The table this record applies to.
    pub fn table(&self) -> &str {
        match self {
            WalRecord::Insert { table, .. }
            | WalRecord::InsertMany { table, .. }
            | WalRecord::Delete { table, .. }
            | WalRecord::CreateTable { table, .. }
            | WalRecord::DropTable { table }
            | WalRecord::CreateIndex { table, .. }
            | WalRecord::DropIndex { table, .. } => table,
        }
    }
}

impl Codec for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Insert { table, row, datum } => {
                TAG_INSERT.encode(out);
                table.encode(out);
                row.encode(out);
                datum.encode(out);
            }
            WalRecord::InsertMany {
                table,
                first_row,
                datums,
            } => {
                TAG_INSERT_MANY.encode(out);
                table.encode(out);
                first_row.encode(out);
                datums.encode(out);
            }
            WalRecord::Delete { table, row } => {
                TAG_DELETE.encode(out);
                table.encode(out);
                row.encode(out);
            }
            WalRecord::CreateTable { table, key_type } => {
                TAG_CREATE_TABLE.encode(out);
                table.encode(out);
                key_type.encode(out);
            }
            WalRecord::DropTable { table } => {
                TAG_DROP_TABLE.encode(out);
                table.encode(out);
            }
            WalRecord::CreateIndex { table, index, spec } => {
                TAG_CREATE_INDEX.encode(out);
                table.encode(out);
                index.encode(out);
                spec.encode(out);
            }
            WalRecord::DropIndex { table, index } => {
                TAG_DROP_INDEX.encode(out);
                table.encode(out);
                index.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(match u8::decode(buf)? {
            TAG_INSERT => WalRecord::Insert {
                table: String::decode(buf)?,
                row: u64::decode(buf)?,
                datum: Vec::decode(buf)?,
            },
            TAG_INSERT_MANY => WalRecord::InsertMany {
                table: String::decode(buf)?,
                first_row: u64::decode(buf)?,
                datums: Vec::decode(buf)?,
            },
            TAG_DELETE => WalRecord::Delete {
                table: String::decode(buf)?,
                row: u64::decode(buf)?,
            },
            TAG_CREATE_TABLE => WalRecord::CreateTable {
                table: String::decode(buf)?,
                key_type: u8::decode(buf)?,
            },
            TAG_DROP_TABLE => WalRecord::DropTable {
                table: String::decode(buf)?,
            },
            TAG_CREATE_INDEX => WalRecord::CreateIndex {
                table: String::decode(buf)?,
                index: String::decode(buf)?,
                spec: Vec::decode(buf)?,
            },
            TAG_DROP_INDEX => WalRecord::DropIndex {
                table: String::decode(buf)?,
                index: String::decode(buf)?,
            },
            tag => {
                return Err(StorageError::Decode(format!(
                    "unknown WAL record tag {tag}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: WalRecord) {
        let bytes = record.to_bytes();
        assert_eq!(WalRecord::from_bytes(&bytes).unwrap(), record);
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(WalRecord::Insert {
            table: "words".into(),
            row: 17,
            datum: vec![0, 3, 0, 0, 0, b'a', b'b', b'c'],
        });
        roundtrip(WalRecord::InsertMany {
            table: "points".into(),
            first_row: 1_000_000,
            datums: vec![vec![1, 2, 3], vec![], vec![255]],
        });
        roundtrip(WalRecord::Delete {
            table: "segments".into(),
            row: 0,
        });
        roundtrip(WalRecord::CreateTable {
            table: "t".into(),
            key_type: 2,
        });
        roundtrip(WalRecord::DropTable { table: "t".into() });
        roundtrip(WalRecord::CreateIndex {
            table: "t".into(),
            index: "t_trie".into(),
            spec: vec![0],
        });
        roundtrip(WalRecord::DropIndex {
            table: "t".into(),
            index: "t_trie".into(),
        });
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        assert!(matches!(
            WalRecord::from_bytes(&[99]),
            Err(StorageError::Decode(_))
        ));
    }
}
