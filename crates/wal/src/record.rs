//! Logical redo records.
//!
//! The WAL is **logical**: each record names a table-level statement
//! (`INSERT`, `DELETE`, a DDL statement), not page images.  Recovery
//! re-executes the statement against the reopened executor state, which
//! works because the executor's row ids are deterministic — an insert always
//! assigns `rows.len()` — so a redo record carrying its assigned row id can
//! verify it lands exactly where the original did.
//!
//! Key values travel as the executor's own record encoding (opaque
//! `Vec<u8>` here; the catalog layer encodes and decodes them), keeping this
//! crate independent of the datum types above it.
//!
//! Since segment format v3, every DML record also carries the id of its
//! enclosing transaction ([`AUTOCOMMIT`] for bare statements), and three
//! transaction-control records exist: [`WalRecord::BeginTxn`],
//! [`WalRecord::CommitTxn`] (the commit point — a transaction whose
//! `CommitTxn` did not reach disk is a *loser* and none of its statements
//! apply at recovery), and [`WalRecord::AbortTxn`].

use spgist_storage::{Codec, StorageError, StorageResult};

/// A log sequence number: records are numbered densely from 0 across the
/// whole log, so `lsn` doubles as "number of records ever appended before
/// this one".
pub type Lsn = u64;

/// A transaction id.  Ids are unique among the records that coexist in the
/// log: the executor allocates them from a counter seeded past the largest
/// id surviving in the log at open, so a replayed `CommitTxn` can never
/// adopt statements from a later incarnation.
pub type TxnId = u64;

/// The reserved transaction id for auto-commit statements: a DML record
/// carrying `AUTOCOMMIT` is durable (and replayable) on its own, without a
/// surrounding `BeginTxn`/`CommitTxn` pair.
pub const AUTOCOMMIT: TxnId = 0;

const TAG_INSERT: u8 = 0;
const TAG_INSERT_MANY: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_CREATE_TABLE: u8 = 3;
const TAG_DROP_TABLE: u8 = 4;
const TAG_CREATE_INDEX: u8 = 5;
const TAG_DROP_INDEX: u8 = 6;
const TAG_BEGIN_TXN: u8 = 7;
const TAG_COMMIT_TXN: u8 = 8;
const TAG_ABORT_TXN: u8 = 9;

/// One logical redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One row inserted into `table`, assigned row id `row`; `datum` is the
    /// executor's record encoding of the key value.
    Insert {
        /// Target table name.
        table: String,
        /// The row id the insert assigned (`rows.len()` at execution).
        row: u64,
        /// Encoded key value (the executor's heap record bytes).
        datum: Vec<u8>,
        /// Enclosing transaction, or [`AUTOCOMMIT`].
        txn: TxnId,
    },
    /// A whole `insert_many` batch as **one** record: rows
    /// `first_row .. first_row + datums.len()` in input order.  Logged as a
    /// unit so recovery reproduces the batch's all-or-nothing visibility.
    InsertMany {
        /// Target table name.
        table: String,
        /// Row id assigned to the first value of the batch.
        first_row: u64,
        /// Encoded key values in input order.
        datums: Vec<Vec<u8>>,
        /// Enclosing transaction, or [`AUTOCOMMIT`].
        txn: TxnId,
    },
    /// Row `row` deleted from `table`.
    Delete {
        /// Target table name.
        table: String,
        /// The deleted row id.
        row: u64,
        /// Enclosing transaction, or [`AUTOCOMMIT`].
        txn: TxnId,
    },
    /// `CREATE TABLE` (key type as the catalog's stable tag).
    CreateTable {
        /// New table name.
        table: String,
        /// Key type tag (0 varchar, 1 point, 2 segment).
        key_type: u8,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Dropped table name.
        table: String,
    },
    /// `CREATE INDEX`; `spec` is the catalog layer's encoding of the index
    /// specification (kind tag plus parameters).
    CreateIndex {
        /// Table the index is built on.
        table: String,
        /// Index name.
        index: String,
        /// Encoded index specification.
        spec: Vec<u8>,
    },
    /// `DROP INDEX`.
    DropIndex {
        /// Table the index belonged to.
        table: String,
        /// Dropped index name.
        index: String,
    },
    /// Transaction `txn` opened.  Written lazily, just before the
    /// transaction's first logged statement, so read-only transactions leave
    /// no trace in the log.
    BeginTxn {
        /// The transaction id.
        txn: TxnId,
    },
    /// Transaction `txn` committed.  This record *is* the commit point: its
    /// batch seal reaching disk makes every statement of the transaction
    /// durable in one step, and recovery applies a transaction's statements
    /// only when its `CommitTxn` survives.
    CommitTxn {
        /// The committed transaction id.
        txn: TxnId,
    },
    /// Transaction `txn` rolled back.  Informational: recovery already drops
    /// any transaction without a surviving `CommitTxn`, but an explicit
    /// abort record lets replay discard the loser's buffered statements as
    /// soon as it is seen.
    AbortTxn {
        /// The aborted transaction id.
        txn: TxnId,
    },
}

impl WalRecord {
    /// The table this record applies to (`None` for transaction-control
    /// records, which span tables).
    pub fn table(&self) -> Option<&str> {
        match self {
            WalRecord::Insert { table, .. }
            | WalRecord::InsertMany { table, .. }
            | WalRecord::Delete { table, .. }
            | WalRecord::CreateTable { table, .. }
            | WalRecord::DropTable { table }
            | WalRecord::CreateIndex { table, .. }
            | WalRecord::DropIndex { table, .. } => Some(table),
            WalRecord::BeginTxn { .. }
            | WalRecord::CommitTxn { .. }
            | WalRecord::AbortTxn { .. } => None,
        }
    }

    /// The transaction a record belongs to: [`AUTOCOMMIT`] for bare DML and
    /// all DDL (DDL is always auto-commit), the carried id otherwise.
    pub fn txn(&self) -> TxnId {
        match self {
            WalRecord::Insert { txn, .. }
            | WalRecord::InsertMany { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::BeginTxn { txn }
            | WalRecord::CommitTxn { txn }
            | WalRecord::AbortTxn { txn } => *txn,
            WalRecord::CreateTable { .. }
            | WalRecord::DropTable { .. }
            | WalRecord::CreateIndex { .. }
            | WalRecord::DropIndex { .. } => AUTOCOMMIT,
        }
    }
}

impl Codec for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Insert {
                table,
                row,
                datum,
                txn,
            } => {
                TAG_INSERT.encode(out);
                table.encode(out);
                row.encode(out);
                datum.encode(out);
                txn.encode(out);
            }
            WalRecord::InsertMany {
                table,
                first_row,
                datums,
                txn,
            } => {
                TAG_INSERT_MANY.encode(out);
                table.encode(out);
                first_row.encode(out);
                datums.encode(out);
                txn.encode(out);
            }
            WalRecord::Delete { table, row, txn } => {
                TAG_DELETE.encode(out);
                table.encode(out);
                row.encode(out);
                txn.encode(out);
            }
            WalRecord::CreateTable { table, key_type } => {
                TAG_CREATE_TABLE.encode(out);
                table.encode(out);
                key_type.encode(out);
            }
            WalRecord::DropTable { table } => {
                TAG_DROP_TABLE.encode(out);
                table.encode(out);
            }
            WalRecord::CreateIndex { table, index, spec } => {
                TAG_CREATE_INDEX.encode(out);
                table.encode(out);
                index.encode(out);
                spec.encode(out);
            }
            WalRecord::DropIndex { table, index } => {
                TAG_DROP_INDEX.encode(out);
                table.encode(out);
                index.encode(out);
            }
            WalRecord::BeginTxn { txn } => {
                TAG_BEGIN_TXN.encode(out);
                txn.encode(out);
            }
            WalRecord::CommitTxn { txn } => {
                TAG_COMMIT_TXN.encode(out);
                txn.encode(out);
            }
            WalRecord::AbortTxn { txn } => {
                TAG_ABORT_TXN.encode(out);
                txn.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(match u8::decode(buf)? {
            TAG_INSERT => WalRecord::Insert {
                table: String::decode(buf)?,
                row: u64::decode(buf)?,
                datum: Vec::decode(buf)?,
                txn: TxnId::decode(buf)?,
            },
            TAG_INSERT_MANY => WalRecord::InsertMany {
                table: String::decode(buf)?,
                first_row: u64::decode(buf)?,
                datums: Vec::decode(buf)?,
                txn: TxnId::decode(buf)?,
            },
            TAG_DELETE => WalRecord::Delete {
                table: String::decode(buf)?,
                row: u64::decode(buf)?,
                txn: TxnId::decode(buf)?,
            },
            TAG_CREATE_TABLE => WalRecord::CreateTable {
                table: String::decode(buf)?,
                key_type: u8::decode(buf)?,
            },
            TAG_DROP_TABLE => WalRecord::DropTable {
                table: String::decode(buf)?,
            },
            TAG_CREATE_INDEX => WalRecord::CreateIndex {
                table: String::decode(buf)?,
                index: String::decode(buf)?,
                spec: Vec::decode(buf)?,
            },
            TAG_DROP_INDEX => WalRecord::DropIndex {
                table: String::decode(buf)?,
                index: String::decode(buf)?,
            },
            TAG_BEGIN_TXN => WalRecord::BeginTxn {
                txn: TxnId::decode(buf)?,
            },
            TAG_COMMIT_TXN => WalRecord::CommitTxn {
                txn: TxnId::decode(buf)?,
            },
            TAG_ABORT_TXN => WalRecord::AbortTxn {
                txn: TxnId::decode(buf)?,
            },
            tag => {
                return Err(StorageError::Decode(format!(
                    "unknown WAL record tag {tag}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: WalRecord) {
        let bytes = record.to_bytes();
        assert_eq!(WalRecord::from_bytes(&bytes).unwrap(), record);
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(WalRecord::Insert {
            table: "words".into(),
            row: 17,
            datum: vec![0, 3, 0, 0, 0, b'a', b'b', b'c'],
            txn: AUTOCOMMIT,
        });
        roundtrip(WalRecord::InsertMany {
            table: "points".into(),
            first_row: 1_000_000,
            datums: vec![vec![1, 2, 3], vec![], vec![255]],
            txn: 42,
        });
        roundtrip(WalRecord::Delete {
            table: "segments".into(),
            row: 0,
            txn: u64::MAX,
        });
        roundtrip(WalRecord::CreateTable {
            table: "t".into(),
            key_type: 2,
        });
        roundtrip(WalRecord::DropTable { table: "t".into() });
        roundtrip(WalRecord::CreateIndex {
            table: "t".into(),
            index: "t_trie".into(),
            spec: vec![0],
        });
        roundtrip(WalRecord::DropIndex {
            table: "t".into(),
            index: "t_trie".into(),
        });
        roundtrip(WalRecord::BeginTxn { txn: 1 });
        roundtrip(WalRecord::CommitTxn { txn: 7 });
        roundtrip(WalRecord::AbortTxn { txn: u64::MAX });
    }

    #[test]
    fn txn_accessor_covers_every_variant() {
        assert_eq!(WalRecord::BeginTxn { txn: 9 }.txn(), 9);
        assert_eq!(WalRecord::CommitTxn { txn: 9 }.txn(), 9);
        assert_eq!(WalRecord::AbortTxn { txn: 9 }.txn(), 9);
        assert_eq!(
            WalRecord::Delete {
                table: "t".into(),
                row: 3,
                txn: 5,
            }
            .txn(),
            5
        );
        // DDL is always auto-commit.
        assert_eq!(WalRecord::DropTable { table: "t".into() }.txn(), AUTOCOMMIT);
        assert_eq!(
            WalRecord::DropTable { table: "t".into() }.table(),
            Some("t")
        );
        assert_eq!(WalRecord::CommitTxn { txn: 9 }.table(), None);
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        assert!(matches!(
            WalRecord::from_bytes(&[99]),
            Err(StorageError::Decode(_))
        ));
    }
}
