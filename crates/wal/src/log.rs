//! The append-only segmented log and its group-commit flusher.
//!
//! # On-disk format
//!
//! The log is a family of sibling files next to the database file, named
//! `<db>.wal.<seq>` with a strictly increasing decimal `<seq>`.  Each
//! segment starts with a 16-byte header
//!
//! ```text
//! magic "SPGW" (u32 LE) | version (u32 LE) | base_lsn (u64 LE)
//! ```
//!
//! followed by records framed as
//!
//! ```text
//! payload_len (u32 LE) | crc32(payload) (u32 LE) | payload
//! ```
//!
//! Records carry no explicit LSN: they are numbered densely, so a record's
//! LSN is `base_lsn + its index in the segment`, and each segment's
//! `base_lsn` must equal its predecessor's end — a gap or overlap is
//! [`StorageError::Corrupt`].
//!
//! Every group-committed batch (the set of frames covered by one `fsync`)
//! is terminated by a **batch seal**, distinguished from a record frame by
//! a zero length field:
//!
//! ```text
//! 0 (u32 LE) | magic "SPGS" (u32 LE) | record_count (u32 LE)
//!           | crc32(batch frame bytes) (u32 LE) | crc32(first 16 bytes) (u32 LE)
//! ```
//!
//! Replay only accepts records up to the last valid seal, so a torn group
//! commit is detected — and discarded — **as a unit**: either every record
//! a batch's `fsync` covered survives, or none of them does.  Without the
//! seal, a crash mid-batch could surface a prefix of a batch whose commit
//! was never acknowledged yet whose early frames happened to hit disk.
//!
//! # Torn tails vs. corruption
//!
//! Only the **last** segment can legitimately end mid-batch (the process
//! died between `write` and `fsync`): on open, the first short frame,
//! CRC-failing frame, or missing/invalid seal in the last segment ends the
//! log and the file is truncated back to the end of the last *sealed
//! batch*.  Sealed segments are fully synced before their successor is
//! created, so damage there — including an unsealed trailing batch — is
//! real corruption and fails the open.  A record whose CRC matches but
//! whose payload does not decode is corruption everywhere — a torn write
//! cannot produce a matching CRC.
//!
//! # Group commit
//!
//! Writers [`Wal::submit`] a record (cheap: an in-memory append under a
//! mutex, returning the assigned LSN) and then [`Wal::wait_durable`] on
//! that LSN.  A dedicated flusher thread drains the submission queue,
//! writes one batch, issues **one** `fsync` for the whole batch, and wakes
//! every waiter the sync covered.  [`WalConfig::max_batch`] caps the batch
//! (1 = per-commit fsync, the comparison baseline), and
//! [`WalConfig::max_wait`] optionally holds the flusher back to let a batch
//! fill.  Batching also arises naturally: commits that arrive while an
//! `fsync` is in flight queue up for the next one.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spgist_storage::{Codec, StorageError, StorageResult};

use crate::crc::crc32;
use crate::record::{Lsn, WalRecord};

/// Magic marker leading every WAL segment file (`"SPGW"`).
const SEGMENT_MAGIC: u32 = 0x5350_4757;
/// Segment format version.  Version 2 added the batch seal; version 3 added
/// transaction ids on DML records plus the `BeginTxn`/`CommitTxn`/`AbortTxn`
/// control records.  Older segments are refused rather than silently
/// replayed: v1 lacks torn-batch detection and v2 records decode to a
/// different layout (no txn field), so recovery could not tell committed
/// work from a loser transaction's.
const SEGMENT_VERSION: u32 = 3;
/// Bytes in a segment header.
const HEADER_BYTES: u64 = 16;
/// Bytes in a record frame header (`payload_len`, `crc`).
const FRAME_HEADER_BYTES: usize = 8;
/// Magic marker in a batch-seal frame (`"SPGS"`), following the zero
/// length field that tells it apart from a record frame.
const SEAL_MAGIC: u32 = 0x5350_4753;
/// Bytes in a batch seal: zero length, magic, record count, batch CRC,
/// seal CRC.
const SEAL_BYTES: usize = 20;
/// Sanity cap on a single record payload (a decoded `insert_many` batch of
/// this size would already be absurd); larger lengths are treated as
/// damage, not as records.
const MAX_PAYLOAD: u32 = 1 << 30;

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes (checked at batch boundaries, so segments overshoot by at most
    /// one batch).
    pub segment_bytes: u64,
    /// How long the flusher holds an under-full batch open waiting for more
    /// commits before syncing anyway.  `Duration::ZERO` (the default)
    /// flushes as soon as the flusher gets the queue — batching then comes
    /// only from commits arriving while a sync is in flight.
    pub max_wait: Duration,
    /// Most records covered by one `fsync`.  `1` degenerates to a
    /// per-commit fsync, the baseline the `wal` bench experiment compares
    /// group commit against.
    pub max_batch: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 << 20,
            max_wait: Duration::ZERO,
            max_batch: 64,
        }
    }
}

impl WalConfig {
    /// The comparison baseline: every commit pays its own `fsync`.
    pub fn per_commit() -> Self {
        WalConfig {
            max_batch: 1,
            ..WalConfig::default()
        }
    }
}

/// Submission queue: what writers have handed over but the flusher has not
/// yet taken.
struct Core {
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Encoded frames awaiting write, oldest first.
    pending: VecDeque<Vec<u8>>,
    /// LSN of `pending.front()` (meaningless while `pending` is empty).
    pending_first: Lsn,
    /// True while one thread (flusher or a rotation) owns the write path;
    /// the queue must not be drained by anyone else until it clears.
    flushing: bool,
    /// Set by [`Wal::drop`] (clean drain) or by the flusher on I/O error
    /// (poison): no further submissions are accepted.
    shutdown: bool,
}

/// A sealed (immutable, fully synced) segment.
struct Sealed {
    base: Lsn,
    end: Lsn,
    path: PathBuf,
}

/// The file-facing half: the active segment and the sealed ones.
struct IoState {
    dir: PathBuf,
    prefix: String,
    file: File,
    active_seq: u64,
    active_path: PathBuf,
    active_base: Lsn,
    active_records: u64,
    active_bytes: u64,
    sealed: Vec<Sealed>,
    /// `fsync`s issued since open (one per group).
    syncs: u64,
    /// Records written since open.
    written: u64,
}

/// What `wait_durable` blocks on.
struct DurableState {
    lsn: Lsn,
    /// Poison: the flusher hit an I/O error; every current and future
    /// waiter gets this instead of an acknowledgment.
    error: Option<String>,
}

struct Shared {
    config: WalConfig,
    core: Mutex<Core>,
    /// Signaled on submit, on shutdown, and when `flushing` clears.
    work: Condvar,
    io: Mutex<IoState>,
    durable: Mutex<DurableState>,
    durable_cv: Condvar,
}

/// The write-ahead log: see the module docs for format and protocol.
pub struct Wal {
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

fn io_err(msg: String) -> StorageError {
    StorageError::Io(std::io::Error::other(msg))
}

/// Best-effort directory sync so segment creation/removal survives a crash
/// (on platforms where directories cannot be opened this is a no-op).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

fn segment_path(dir: &Path, prefix: &str, seq: u64) -> PathBuf {
    dir.join(format!("{prefix}.{seq:06}"))
}

/// Segment files matching `prefix` in `dir`, as `(seq, path)` sorted by
/// sequence number.
fn scan_segments(dir: &Path, prefix: &str) -> StorageResult<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(tail) = name.strip_prefix(prefix).and_then(|t| t.strip_prefix('.')) else {
            continue;
        };
        if let Ok(seq) = tail.parse::<u64>() {
            found.push((seq, entry.path()));
        }
    }
    found.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(found)
}

fn frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.to_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn create_segment(dir: &Path, prefix: &str, seq: u64, base: Lsn) -> StorageResult<(File, PathBuf)> {
    let path = segment_path(dir, prefix, seq);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..4].copy_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&base.to_le_bytes());
    file.write_all(&header)?;
    file.sync_all()?;
    sync_dir(dir);
    Ok((file, path))
}

/// One parsed segment: header info plus its decoded records, and where the
/// last sealed batch ends (for tail truncation).
struct ScannedSegment {
    base: Lsn,
    records: Vec<WalRecord>,
    good_end: u64,
}

/// Reads one segment.  Records are buffered per batch and committed only
/// when the batch's seal checks out, so a torn group commit drops as a
/// unit.  `is_last` selects torn-tail tolerance: in the last segment a
/// short frame, CRC failure, or unsealed trailing batch ends the log;
/// anywhere else it is corruption.
fn scan_segment(path: &Path, is_last: bool) -> StorageResult<ScannedSegment> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let corrupt = |msg: String| StorageError::Corrupt(format!("wal segment {path:?}: {msg}"));
    if bytes.len() < HEADER_BYTES as usize {
        return Err(corrupt(format!("short header ({} bytes)", bytes.len())));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("length checked"));
    if magic != SEGMENT_MAGIC {
        return Err(corrupt("bad magic (not a WAL segment)".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("length checked"));
    if version != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let base = u64::from_le_bytes(bytes[8..16].try_into().expect("length checked"));

    let mut records = Vec::new();
    // Records decoded since the last seal: committed to `records` only once
    // their batch seal checks out, dropped as a unit otherwise.
    let mut pending: Vec<WalRecord> = Vec::new();
    let mut pos = HEADER_BYTES as usize;
    let mut batch_start = pos;
    let mut good_end = pos;
    loop {
        if pos == bytes.len() {
            break;
        }
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER_BYTES) else {
            // Short frame header: the torn tail of the last segment,
            // corruption anywhere else.
            if is_last {
                break;
            }
            return Err(corrupt(format!(
                "frame at byte {pos} is torn in a sealed segment"
            )));
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("length checked"));
        if len == 0 {
            // Batch seal.  Valid only when its own CRC holds *and* it
            // vouches for exactly the frames written since the previous
            // seal — a seal that survived a crash ahead of its batch's
            // record bytes must not commit them.
            let sealed = (|| {
                let seal = bytes.get(pos..pos + SEAL_BYTES)?;
                let magic = u32::from_le_bytes(seal[4..8].try_into().expect("length checked"));
                let count = u32::from_le_bytes(seal[8..12].try_into().expect("length checked"));
                let batch_crc =
                    u32::from_le_bytes(seal[12..16].try_into().expect("length checked"));
                let seal_crc = u32::from_le_bytes(seal[16..20].try_into().expect("length checked"));
                (magic == SEAL_MAGIC
                    && crc32(&seal[0..16]) == seal_crc
                    && count as usize == pending.len()
                    && batch_crc == crc32(&bytes[batch_start..pos]))
                .then_some(())
            })();
            if sealed.is_none() {
                if is_last {
                    break;
                }
                return Err(corrupt(format!(
                    "batch seal at byte {pos} is torn in a sealed segment"
                )));
            }
            records.append(&mut pending);
            pos += SEAL_BYTES;
            batch_start = pos;
            good_end = pos;
            continue;
        }
        // A record frame that does not fully check out: the torn tail of
        // the last segment, corruption anywhere else.
        let whole = (|| {
            if len > MAX_PAYLOAD {
                return None;
            }
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("length checked"));
            let payload =
                bytes.get(pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len as usize)?;
            (crc32(payload) == crc).then_some(payload)
        })();
        let Some(payload) = whole else {
            if is_last {
                break;
            }
            return Err(corrupt(format!(
                "record at byte {pos} is torn in a sealed segment"
            )));
        };
        // A matching CRC over bytes that do not decode is not a torn write.
        let record = WalRecord::from_bytes(payload)
            .map_err(|e| corrupt(format!("record at byte {pos} does not decode: {e}")))?;
        pending.push(record);
        pos += FRAME_HEADER_BYTES + payload.len();
    }
    // Whole frames past the last seal: the writer died between `write` and
    // the batch's `fsync` — drop the batch as a unit in the last segment,
    // refuse a sealed segment that ends unsealed.
    if !pending.is_empty() && !is_last {
        return Err(corrupt("segment ends with an unsealed batch".into()));
    }
    Ok(ScannedSegment {
        base,
        records,
        good_end: good_end as u64,
    })
}

impl Wal {
    /// Creates a fresh, empty log at `prefix` (the database path plus
    /// `.wal`), deleting any stale segments a previous database at the same
    /// path left behind.
    pub fn create<P: AsRef<Path>>(prefix: P, config: WalConfig) -> StorageResult<Wal> {
        let (dir, name) = split_prefix(prefix.as_ref())?;
        for (_, path) in scan_segments(&dir, &name)? {
            std::fs::remove_file(path)?;
        }
        sync_dir(&dir);
        let (file, path) = create_segment(&dir, &name, 1, 0)?;
        Ok(Self::start(
            config,
            dir,
            name,
            file,
            path,
            1,
            0,
            0,
            HEADER_BYTES,
            Vec::new(),
            0,
        ))
    }

    /// Opens the log at `prefix`, scanning every segment, truncating a torn
    /// tail, and returning the surviving records as `(lsn, record)` pairs
    /// in LSN order.
    ///
    /// `checkpoint_lsn` is the position the durable catalog claims is fully
    /// reflected in the data file: the log must still cover it — a log
    /// whose first segment starts after it has a recovery gap, and one that
    /// ends before it is missing acknowledged records; both are
    /// [`StorageError::Corrupt`].
    pub fn open<P: AsRef<Path>>(
        prefix: P,
        config: WalConfig,
        checkpoint_lsn: Lsn,
    ) -> StorageResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        let (dir, name) = split_prefix(prefix.as_ref())?;
        let mut segments = scan_segments(&dir, &name)?;
        if segments.is_empty() {
            if checkpoint_lsn != 0 {
                return Err(StorageError::Corrupt(format!(
                    "write-ahead log missing: the catalog checkpoint is at lsn \
                     {checkpoint_lsn} but no {name}.* segments exist"
                )));
            }
            let (file, path) = create_segment(&dir, &name, 1, 0)?;
            let wal = Self::start(
                config,
                dir,
                name,
                file,
                path,
                1,
                0,
                0,
                HEADER_BYTES,
                Vec::new(),
                0,
            );
            return Ok((wal, Vec::new()));
        }

        // A crash between creating a new segment and syncing its header can
        // leave a headerless last file: drop it and recover from the one
        // before.  When it is the *only* file, the crash happened during
        // the very first `Wal::create` — nothing was ever logged, so with
        // nothing checkpointed the log is simply empty and fresh.  (With a
        // nonzero checkpoint a lone sub-header file really is missing
        // acknowledged records; fall through and let `scan_segment` report
        // it as corrupt.)
        {
            let (_, last_path) = segments.last().expect("non-empty");
            let len = std::fs::metadata(last_path)?.len();
            if len < HEADER_BYTES {
                if segments.len() > 1 {
                    std::fs::remove_file(last_path)?;
                    sync_dir(&dir);
                    segments.pop();
                } else if checkpoint_lsn == 0 {
                    std::fs::remove_file(last_path)?;
                    sync_dir(&dir);
                    let (file, path) = create_segment(&dir, &name, 1, 0)?;
                    let wal = Self::start(
                        config,
                        dir,
                        name,
                        file,
                        path,
                        1,
                        0,
                        0,
                        HEADER_BYTES,
                        Vec::new(),
                        0,
                    );
                    return Ok((wal, Vec::new()));
                }
            }
        }

        let mut all = Vec::new();
        let mut sealed = Vec::new();
        let mut expected_base: Option<Lsn> = None;
        let mut active = None;
        let last_idx = segments.len() - 1;
        for (idx, (seq, path)) in segments.iter().enumerate() {
            let is_last = idx == last_idx;
            let scanned = scan_segment(path, is_last)?;
            if let Some(expected) = expected_base {
                if scanned.base != expected {
                    return Err(StorageError::Corrupt(format!(
                        "wal segment {path:?} starts at lsn {} but its \
                         predecessor ends at lsn {expected}",
                        scanned.base
                    )));
                }
            }
            let end = scanned.base + scanned.records.len() as u64;
            for (i, record) in scanned.records.into_iter().enumerate() {
                all.push((scanned.base + i as u64, record));
            }
            expected_base = Some(end);
            if is_last {
                // Truncate the torn tail so appends resume after the last
                // whole record.
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                file.set_len(scanned.good_end)?;
                file.sync_all()?;
                file.seek(SeekFrom::End(0))?;
                active = Some((
                    file,
                    path.clone(),
                    *seq,
                    scanned.base,
                    end - scanned.base,
                    scanned.good_end,
                ));
            } else {
                sealed.push(Sealed {
                    base: scanned.base,
                    end,
                    path: path.clone(),
                });
            }
        }
        let (file, path, seq, base, records, bytes) = active.expect("segments are non-empty");
        let end = base + records;
        let first_base = sealed.first().map_or(base, |s| s.base);
        if checkpoint_lsn < first_base {
            return Err(StorageError::Corrupt(format!(
                "wal starts at lsn {first_base}, after the catalog checkpoint at \
                 lsn {checkpoint_lsn}: records needed for recovery are gone"
            )));
        }
        if checkpoint_lsn > end {
            return Err(StorageError::Corrupt(format!(
                "wal ends at lsn {end}, before the catalog checkpoint at lsn \
                 {checkpoint_lsn}: the log is older than the data file"
            )));
        }
        let wal = Self::start(
            config, dir, name, file, path, seq, base, records, bytes, sealed, end,
        );
        Ok((wal, all))
    }

    #[allow(clippy::too_many_arguments)]
    fn start(
        config: WalConfig,
        dir: PathBuf,
        prefix: String,
        file: File,
        active_path: PathBuf,
        active_seq: u64,
        active_base: Lsn,
        active_records: u64,
        active_bytes: u64,
        sealed: Vec<Sealed>,
        next_lsn: Lsn,
    ) -> Wal {
        let shared = Arc::new(Shared {
            config: WalConfig {
                max_batch: config.max_batch.max(1),
                ..config
            },
            core: Mutex::new(Core {
                next_lsn,
                pending: VecDeque::new(),
                pending_first: next_lsn,
                flushing: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            io: Mutex::new(IoState {
                dir,
                prefix,
                file,
                active_seq,
                active_path,
                active_base,
                active_records,
                active_bytes,
                sealed,
                syncs: 0,
                written: 0,
            }),
            durable: Mutex::new(DurableState {
                lsn: next_lsn,
                error: None,
            }),
            durable_cv: Condvar::new(),
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || flusher_loop(&shared))
                .expect("spawning the wal flusher thread")
        };
        Wal {
            shared,
            flusher: Mutex::new(Some(flusher)),
        }
    }

    /// Hands a record to the flusher and returns its LSN **without waiting
    /// for durability**.  The caller must [`Wal::wait_durable`] on the
    /// returned LSN before acknowledging the write — but may (and, for
    /// group commit to batch, should) release its own locks in between.
    pub fn submit(&self, record: &WalRecord) -> StorageResult<Lsn> {
        let bytes = frame(record);
        let mut core = self.shared.core.lock().expect("wal core mutex");
        if core.shutdown {
            drop(core);
            return Err(self
                .poison()
                .unwrap_or_else(|| io_err("write-ahead log is shut down".into())));
        }
        let lsn = core.next_lsn;
        if core.pending.is_empty() {
            core.pending_first = lsn;
        }
        core.pending.push_back(bytes);
        core.next_lsn += 1;
        drop(core);
        self.shared.work.notify_all();
        Ok(lsn)
    }

    /// Blocks until every record up to **and including** `lsn` is on stable
    /// storage (or the flusher has failed, in which case the failure is
    /// returned — the record's durability is then unknown).
    pub fn wait_durable(&self, lsn: Lsn) -> StorageResult<()> {
        let mut durable = self.shared.durable.lock().expect("wal durable mutex");
        loop {
            if let Some(msg) = &durable.error {
                return Err(io_err(msg.clone()));
            }
            if durable.lsn > lsn {
                return Ok(());
            }
            durable = self
                .shared
                .durable_cv
                .wait(durable)
                .expect("wal durable mutex");
        }
    }

    /// [`Wal::submit`] + [`Wal::wait_durable`]: append one record and block
    /// until it is on stable storage.
    pub fn append(&self, record: &WalRecord) -> StorageResult<Lsn> {
        let lsn = self.submit(record)?;
        self.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// Seals the active segment and starts a fresh one, returning the new
    /// segment's base LSN (the **cut**): every record below it is durable in
    /// sealed segments when this returns, and every record at or above it
    /// lands in the new segment.  The checkpoint protocol calls this first,
    /// persists a catalog claiming `checkpoint_lsn = cut`, and then
    /// [`Wal::prune`]s the sealed segments the catalog made redundant.
    pub fn rotate(&self) -> StorageResult<Lsn> {
        let mut core = self.shared.core.lock().expect("wal core mutex");
        while core.flushing {
            core = self.shared.work.wait(core).expect("wal core mutex");
        }
        if core.shutdown {
            drop(core);
            return Err(self
                .poison()
                .unwrap_or_else(|| io_err("write-ahead log is shut down".into())));
        }
        let frames: Vec<Vec<u8>> = core.pending.drain(..).collect();
        let cut = core.next_lsn;
        core.pending_first = cut;
        core.flushing = true;
        drop(core);

        let result = (|| -> StorageResult<()> {
            let mut io = self.shared.io.lock().expect("wal io mutex");
            debug_assert_eq!(
                io.active_base + io.active_records + frames.len() as u64,
                cut
            );
            if !frames.is_empty() {
                write_frames(&mut io, &frames)?;
            }
            if io.active_records > 0 {
                seal_and_open(&mut io, cut)?;
            }
            Ok(())
        })();

        match result {
            Ok(()) => {
                self.publish_durable(cut);
                let mut core = self.shared.core.lock().expect("wal core mutex");
                core.flushing = false;
                drop(core);
                self.shared.work.notify_all();
                Ok(cut)
            }
            Err(e) => {
                self.fail(format!("wal rotation failed: {e}"));
                Err(e)
            }
        }
    }

    /// Deletes sealed segments whose every record is below `upto` (their
    /// contents are fully reflected in a durable checkpoint).  The active
    /// segment is never touched.
    pub fn prune(&self, upto: Lsn) -> StorageResult<()> {
        let mut io = self.shared.io.lock().expect("wal io mutex");
        let mut err = None;
        io.sealed.retain(|seg| {
            if seg.end <= upto && err.is_none() {
                match std::fs::remove_file(&seg.path) {
                    Ok(()) => false,
                    Err(e) => {
                        err = Some(e.into());
                        true
                    }
                }
            } else {
                true
            }
        });
        sync_dir(&io.dir);
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The next LSN to be assigned (= records ever submitted).
    pub fn next_lsn(&self) -> Lsn {
        self.shared.core.lock().expect("wal core mutex").next_lsn
    }

    /// Everything below this LSN is on stable storage.
    pub fn durable_lsn(&self) -> Lsn {
        self.shared.durable.lock().expect("wal durable mutex").lsn
    }

    /// Number of `fsync`s issued since open — with group commit this stays
    /// well below the number of records, and the `wal` experiment reports
    /// the ratio.
    pub fn sync_count(&self) -> u64 {
        self.shared.io.lock().expect("wal io mutex").syncs
    }

    /// Number of records written since open.
    pub fn written_count(&self) -> u64 {
        self.shared.io.lock().expect("wal io mutex").written
    }

    /// Number of live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.shared.io.lock().expect("wal io mutex").sealed.len() + 1
    }

    fn publish_durable(&self, lsn: Lsn) {
        let mut durable = self.shared.durable.lock().expect("wal durable mutex");
        if lsn > durable.lsn {
            durable.lsn = lsn;
        }
        drop(durable);
        self.shared.durable_cv.notify_all();
    }

    /// `Ok` while the log can still accept and persist records.  After any
    /// flusher I/O failure the log is **poisoned** — every subsequent
    /// `submit`/`append` fails, and this returns the original failure.
    /// Callers that serve reads from state whose durability the poisoned
    /// log can no longer vouch for check this and fail fast instead of
    /// serving possibly-non-durable data; the recovery path is to reopen
    /// the database and replay.
    pub fn health(&self) -> StorageResult<()> {
        match self.poison() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Test hook: poisons the log as an I/O failure in the flusher would,
    /// so failure-handling above the WAL can be exercised without a real
    /// disk fault.
    #[doc(hidden)]
    pub fn fail_for_test(&self, msg: &str) {
        self.fail(msg.to_string());
    }

    fn poison(&self) -> Option<StorageError> {
        let durable = self.shared.durable.lock().expect("wal durable mutex");
        durable.error.as_ref().map(|msg| io_err(msg.clone()))
    }

    fn fail(&self, msg: String) {
        fail_shared(&self.shared, msg);
    }
}

fn fail_shared(shared: &Shared, msg: String) {
    {
        let mut durable = shared.durable.lock().expect("wal durable mutex");
        if durable.error.is_none() {
            durable.error = Some(msg);
        }
    }
    shared.durable_cv.notify_all();
    {
        let mut core = shared.core.lock().expect("wal core mutex");
        core.shutdown = true;
        core.flushing = false;
    }
    shared.work.notify_all();
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut core = self.shared.core.lock().expect("wal core mutex");
            core.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.flusher.lock().expect("wal flusher handle").take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("next_lsn", &self.next_lsn())
            .field("durable_lsn", &self.durable_lsn())
            .field("segments", &self.segment_count())
            .finish()
    }
}

fn split_prefix(prefix: &Path) -> StorageResult<(PathBuf, String)> {
    let dir = prefix
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let dir = if dir.as_os_str().is_empty() {
        PathBuf::from(".")
    } else {
        dir
    };
    let name = prefix
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io_err(format!("wal prefix {prefix:?} has no file name")))?;
    Ok((dir, name.to_string()))
}

/// The seal frame closing a group-committed batch: a zero length field (no
/// record frame has one), the seal magic, the record count, a CRC over the
/// batch's frame bytes, and a CRC over the seal's own first 16 bytes.
fn seal_frame(frames: &[Vec<u8>]) -> [u8; SEAL_BYTES] {
    let batch: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
    let mut seal = [0u8; SEAL_BYTES];
    seal[0..4].copy_from_slice(&0u32.to_le_bytes());
    seal[4..8].copy_from_slice(&SEAL_MAGIC.to_le_bytes());
    seal[8..12].copy_from_slice(&(frames.len() as u32).to_le_bytes());
    seal[12..16].copy_from_slice(&crc32(&batch).to_le_bytes());
    let seal_crc = crc32(&seal[0..16]);
    seal[16..20].copy_from_slice(&seal_crc.to_le_bytes());
    seal
}

/// Appends `frames` to the active segment as one sealed batch and syncs
/// it: every record frame, then the batch seal, then a single `fsync`.
/// Replay ignores records past the last valid seal, so a crash anywhere
/// before the sync loses the batch as a unit — never a prefix of it.
fn write_frames(io: &mut IoState, frames: &[Vec<u8>]) -> StorageResult<()> {
    if frames.is_empty() {
        return Ok(());
    }
    let batch_bytes: u64 = frames.iter().map(|f| f.len() as u64).sum::<u64>() + SEAL_BYTES as u64;
    Ok(())
        .and_then(|()| {
            for frame in frames {
                io.file.write_all(frame)?;
            }
            io.file.write_all(&seal_frame(frames))?;
            io.file.sync_data()?;
            Ok(())
        })
        .map(|()| {
            io.active_records += frames.len() as u64;
            io.active_bytes += batch_bytes;
            io.syncs += 1;
            io.written += frames.len() as u64;
        })
}

/// Seals the active segment (already fully synced) at `end` and opens a
/// fresh one based there.
fn seal_and_open(io: &mut IoState, end: Lsn) -> StorageResult<()> {
    debug_assert_eq!(io.active_base + io.active_records, end);
    let (file, path) = create_segment(&io.dir, &io.prefix, io.active_seq + 1, end)?;
    let old_path = std::mem::replace(&mut io.active_path, path);
    io.sealed.push(Sealed {
        base: io.active_base,
        end,
        path: old_path,
    });
    io.file = file;
    io.active_seq += 1;
    io.active_base = end;
    io.active_records = 0;
    io.active_bytes = HEADER_BYTES;
    Ok(())
}

/// The dedicated flusher: drains the submission queue in batches, one
/// `fsync` per batch, and publishes durability to the waiters.
fn flusher_loop(shared: &Shared) {
    loop {
        let mut core = shared.core.lock().expect("wal core mutex");
        // Wait for work (or exit once shut down and drained).
        loop {
            if core.shutdown && core.pending.is_empty() {
                return;
            }
            if !core.pending.is_empty() && !core.flushing {
                break;
            }
            core = shared.work.wait(core).expect("wal core mutex");
        }
        // Optionally hold the batch open to let it fill.
        if shared.config.max_wait > Duration::ZERO {
            let deadline = Instant::now() + shared.config.max_wait;
            while core.pending.len() < shared.config.max_batch && !core.shutdown && !core.flushing {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (c, timeout) = shared
                    .work
                    .wait_timeout(core, deadline - now)
                    .expect("wal core mutex");
                core = c;
                if timeout.timed_out() {
                    break;
                }
            }
            if core.flushing || core.pending.is_empty() {
                // A rotation took the queue while we were waiting.
                continue;
            }
        }
        let take = core.pending.len().min(shared.config.max_batch);
        let frames: Vec<Vec<u8>> = core.pending.drain(..take).collect();
        let first = core.pending_first;
        core.pending_first += take as u64;
        core.flushing = true;
        drop(core);

        let end = first + frames.len() as u64;
        let result = {
            let mut io = shared.io.lock().expect("wal io mutex");
            let over_budget = io.active_records > 0
                && io.active_bytes + frames.iter().map(|f| f.len() as u64).sum::<u64>()
                    > shared.config.segment_bytes;
            if over_budget {
                seal_and_open(&mut io, first).and_then(|()| write_frames(&mut io, &frames))
            } else {
                write_frames(&mut io, &frames)
            }
        };
        match result {
            Ok(()) => {
                {
                    let mut durable = shared.durable.lock().expect("wal durable mutex");
                    if end > durable.lsn {
                        durable.lsn = end;
                    }
                }
                shared.durable_cv.notify_all();
                {
                    let mut core = shared.core.lock().expect("wal core mutex");
                    core.flushing = false;
                }
                shared.work.notify_all();
            }
            Err(e) => {
                fail_shared(shared, format!("wal flush failed: {e}"));
                return;
            }
        }
    }
}
