//! Property tests for the WAL record codec (ISSUE 9 satellite).
//!
//! Two properties, over DetRng-seeded random payloads covering **every**
//! [`WalRecord`] variant:
//!
//! * **round-trip**: `decode(encode(r)) == r`, bit-exact, for arbitrary
//!   table names (including empty and non-ASCII), datum blobs (including
//!   empty), row ids, and transaction ids up to `u64::MAX`;
//! * **reject-on-truncation**: every *strict* prefix of an encoding fails
//!   to decode — a record can never be mistaken for a shorter one, which
//!   is what lets replay treat a torn tail as "not durable" instead of
//!   silently resurrecting half a statement.
//!
//! (Trailing garbage is also rejected: `from_bytes` demands full
//! consumption.  The log's framing adds a CRC on top; these properties
//! hold even without it.)

use spgist_datagen::rng::DetRng;
use spgist_storage::Codec;
use spgist_wal::{TxnId, WalRecord};

fn random_name(rng: &mut DetRng) -> String {
    match rng.gen_range(0u32..8) {
        0 => String::new(),
        1 => "naïve-ünïcode-表".to_string(),
        _ => {
            let len = rng.gen_range(1usize..24);
            (0..len)
                .map(|_| char::from(b'a' + rng.gen_range(0u32..26) as u8))
                .collect()
        }
    }
}

fn random_blob(rng: &mut DetRng) -> Vec<u8> {
    let len = rng.gen_range(0usize..64);
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

fn random_txn(rng: &mut DetRng) -> TxnId {
    match rng.gen_range(0u32..4) {
        0 => 0, // AUTOCOMMIT
        1 => u64::MAX,
        _ => rng.next_u64(),
    }
}

/// One random record of the variant picked by `variant` — the caller
/// cycles `variant` so every shape is hit regardless of seed.
fn random_record(rng: &mut DetRng, variant: u32) -> WalRecord {
    match variant % 10 {
        0 => WalRecord::Insert {
            table: random_name(rng),
            row: rng.next_u64(),
            datum: random_blob(rng),
            txn: random_txn(rng),
        },
        1 => WalRecord::InsertMany {
            table: random_name(rng),
            first_row: rng.next_u64(),
            datums: (0..rng.gen_range(0usize..6))
                .map(|_| random_blob(rng))
                .collect(),
            txn: random_txn(rng),
        },
        2 => WalRecord::Delete {
            table: random_name(rng),
            row: rng.next_u64(),
            txn: random_txn(rng),
        },
        3 => WalRecord::CreateTable {
            table: random_name(rng),
            key_type: rng.gen_range(0u32..256) as u8,
        },
        4 => WalRecord::DropTable {
            table: random_name(rng),
        },
        5 => WalRecord::CreateIndex {
            table: random_name(rng),
            index: random_name(rng),
            spec: random_blob(rng),
        },
        6 => WalRecord::DropIndex {
            table: random_name(rng),
            index: random_name(rng),
        },
        7 => WalRecord::BeginTxn {
            txn: random_txn(rng),
        },
        8 => WalRecord::CommitTxn {
            txn: random_txn(rng),
        },
        _ => WalRecord::AbortTxn {
            txn: random_txn(rng),
        },
    }
}

#[test]
fn every_variant_round_trips_bit_exactly() {
    for seed in [0xC0DEC_u64, 0xF00D_FACE, 42] {
        let mut rng = DetRng::seed_from_u64(seed);
        for i in 0..500 {
            let record = random_record(&mut rng, i);
            let bytes = record.to_bytes();
            let back = WalRecord::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("seed {seed} #{i}: decode failed: {e}\n{record:?}"));
            assert_eq!(back, record, "seed {seed} #{i}: round-trip mismatch");
            assert_eq!(
                back.to_bytes(),
                bytes,
                "seed {seed} #{i}: re-encoding is not canonical"
            );
        }
    }
}

#[test]
fn every_strict_prefix_of_every_variant_is_rejected() {
    let mut rng = DetRng::seed_from_u64(0x77C4_7E57);
    for i in 0..200 {
        let record = random_record(&mut rng, i);
        let bytes = record.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                WalRecord::from_bytes(&bytes[..cut]).is_err(),
                "#{i}: prefix of {cut}/{} bytes decoded as a record\n{record:?}",
                bytes.len()
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut rng = DetRng::seed_from_u64(0xBAD_7A11);
    for i in 0..100 {
        let record = random_record(&mut rng, i);
        let mut bytes = record.to_bytes();
        bytes.push(rng.gen_range(0u32..256) as u8);
        assert!(
            WalRecord::from_bytes(&bytes).is_err(),
            "#{i}: a record with trailing bytes decoded cleanly\n{record:?}"
        );
    }
}

#[test]
fn unknown_tags_are_rejected() {
    for tag in 10u8..=255 {
        assert!(
            WalRecord::from_bytes(&[tag]).is_err(),
            "tag {tag} decoded as a record"
        );
    }
}
