//! The SP-GiST internal methods: generalized insert, search and delete.
//!
//! These methods are "the core of SP-GiST and are the same for all
//! SP-GiST-based indexes" (paper Section 3.1).  They are parameterized by an
//! [`SpGistOps`] implementation — the external methods a developer writes —
//! and by the [`SpGistConfig`] interface parameters.  All node reads and
//! writes go through [`NodeStore`], which performs the node→page clustering.
//!
//! # Concurrency model
//!
//! The tree is shared: every operation takes `&self`.
//!
//! *Writers* (inserts) crab per-page latches root-to-leaf: a descent holds at
//! most the current node's page latch and its parent's, releasing the
//! ancestor as soon as the child is latched.  Latches are try-acquired; on
//! contention the writer releases everything, backs off briefly and restarts
//! from the root, so there is no hold-and-wait and hence no deadlock.
//! Writers on disjoint subtrees proceed in parallel.  Structure-changing
//! operations that need a global view (delete, repack, bulk build) take the
//! `write_gate` exclusively, which only excludes *other writers* — readers
//! are never blocked.
//!
//! *Readers* (search, NN, stats, cursors) take no latches at all.  They pin
//! a reclamation epoch before capturing the root; every record they can
//! reach from that root stays readable because writers retire superseded
//! records into the epoch garbage list instead of freeing them in place.
//! Retired records are physically reclaimed only after the last pin from an
//! earlier epoch drops.  Readers are *snapshot-ish*: the tree they traverse
//! is always a valid tree, but a long scan may observe some effects of
//! writes that committed after it started.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spgist_storage::{
    AccessHint, BufferPool, Codec, ConcurrencyStats, EpochPin, LatchSet, LatchTable, PageId,
    StorageError, StorageResult,
};

use crate::config::NodeShrink;
use crate::nn::NnIter;
use crate::node::{Entry, Node, NodeId};
use crate::ops::{Choose, PickSplit, SpGistOps};
use crate::stats::TreeStats;
use crate::store::NodeStore;
use crate::RowId;

/// Outcome of one latched descent attempt.
enum Descent {
    /// The item was inserted; commit the count and finish.
    Done,
    /// A latch was contended (or the tree was restructured underneath us);
    /// all latches were released — retry from the root.
    Restart,
}

/// A disk-based space-partitioning tree, generalized over its external
/// methods `O`.
pub struct SpGistTree<O: SpGistOps> {
    ops: O,
    store: NodeStore,
    meta_page: PageId,
    /// The root pointer, packed so readers load it with one atomic read and
    /// writers flip it with one atomic store (under `meta_lock`).
    root_cell: AtomicU64,
    item_count: AtomicU64,
    /// Serializes root-pointer flips, count updates and meta-page writes.
    meta_lock: Mutex<()>,
    /// Per-page writer latches for crabbing descents.
    latches: LatchTable,
    /// Inserts take this shared; delete/repack/bulk_build take it exclusive.
    /// Readers never touch it.
    write_gate: RwLock<()>,
}

/// Packs an optional root address into one word: bit 63 is the presence
/// flag, bits 16..48 the page, bits 0..16 the slot.
fn pack_root(root: Option<NodeId>) -> u64 {
    match root {
        None => 0,
        Some(id) => (1 << 63) | (u64::from(id.page) << 16) | u64::from(id.slot),
    }
}

fn unpack_root(cell: u64) -> Option<NodeId> {
    if cell & (1 << 63) == 0 {
        None
    } else {
        Some(NodeId::new((cell >> 16) as u32, cell as u16))
    }
}

impl<O: SpGistOps> SpGistTree<O> {
    /// Creates a new, empty tree whose pages are allocated from `pool`.
    pub fn create(pool: Arc<BufferPool>, ops: O) -> StorageResult<Self> {
        let store = NodeStore::new(Arc::clone(&pool), ops.config().clustering);
        let meta_page = pool.allocate_page()?;
        // Reserve slot 0 of the meta page for the tree descriptor.
        pool.with_page_mut(meta_page, |p| p.insert(&encode_meta(None, 0)))??;
        Ok(SpGistTree {
            ops,
            store,
            meta_page,
            root_cell: AtomicU64::new(pack_root(None)),
            item_count: AtomicU64::new(0),
            meta_lock: Mutex::new(()),
            latches: LatchTable::new(),
            write_gate: RwLock::new(()),
        })
    }

    /// Re-opens a tree previously created on `pool` (or on the file behind
    /// it) from its meta page.
    ///
    /// Only the root pointer and item count are persisted in the meta page;
    /// the page-ownership list used for size statistics is rebuilt lazily, so
    /// [`SpGistTree::stats`] reports `pages = 0` for re-opened trees until new
    /// pages are allocated.  Query and update correctness are unaffected.
    /// When the caller persisted the ownership list (the durable catalog
    /// does), prefer [`SpGistTree::open_with_pages`], which restores full
    /// statistics, repacking and destruction behavior.
    pub fn open(pool: Arc<BufferPool>, ops: O, meta_page: PageId) -> StorageResult<Self> {
        let store = NodeStore::new(Arc::clone(&pool), ops.config().clustering);
        Self::open_with_store(pool, ops, meta_page, store)
    }

    /// Re-opens a tree from its meta page *and* its persisted page-ownership
    /// list (the durable-catalog path).  Unlike [`SpGistTree::open`], the
    /// reopened tree knows every page it owns, so [`SpGistTree::stats`]
    /// reports true sizes, [`SpGistTree::repack`] recycles the old layout,
    /// and [`SpGistTree::destroy`] frees everything — identical to a tree
    /// built in this session.  Page ids are bounds-checked against the pool
    /// so a truncated file fails with [`StorageError::Corrupt`] here.
    pub fn open_with_pages(
        pool: Arc<BufferPool>,
        ops: O,
        meta_page: PageId,
        pages: Vec<PageId>,
    ) -> StorageResult<Self> {
        let allocated = pool.page_count();
        if let Some(&bad) = pages.iter().find(|&&p| p >= allocated) {
            return Err(StorageError::Corrupt(format!(
                "tree page list names page {bad} beyond the {allocated} allocated pages"
            )));
        }
        let store = NodeStore::with_pages(Arc::clone(&pool), ops.config().clustering, pages);
        Self::open_with_store(pool, ops, meta_page, store)
    }

    fn open_with_store(
        pool: Arc<BufferPool>,
        ops: O,
        meta_page: PageId,
        store: NodeStore,
    ) -> StorageResult<Self> {
        let bytes = pool.with_page(meta_page, |p| p.get(0).map(<[u8]>::to_vec))??;
        let (root, item_count) = decode_meta(&bytes)?;
        Ok(SpGistTree {
            ops,
            store,
            meta_page,
            root_cell: AtomicU64::new(pack_root(root)),
            item_count: AtomicU64::new(item_count),
            meta_lock: Mutex::new(()),
            latches: LatchTable::new(),
            write_gate: RwLock::new(()),
        })
    }

    /// The pages owned by this tree's node store, in allocation order.
    /// Persist them alongside [`SpGistTree::meta_page`] and hand both back
    /// to [`SpGistTree::open_with_pages`] to reopen the tree with full
    /// ownership knowledge.
    pub fn owned_pages(&self) -> Vec<PageId> {
        self.store.pages()
    }

    /// The meta page identifying this tree; pass it to [`SpGistTree::open`]
    /// to re-open the tree later.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// The external methods of this instantiation.
    pub fn ops(&self) -> &O {
        &self.ops
    }

    /// The buffer pool used by this tree.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.store.pool()
    }

    /// Number of items stored in the tree.
    pub fn len(&self) -> u64 {
        self.item_count.load(Ordering::Relaxed)
    }

    /// True if the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Latch and epoch counters for this tree: latch acquisitions and waits
    /// from its crabbing writers, plus epoch pins, pin durations and the
    /// retired-record backlog from its node store.  Counters are cumulative;
    /// diff two snapshots with [`ConcurrencyStats::delta_since`].
    pub fn concurrency_stats(&self) -> ConcurrencyStats {
        let mut stats = self.store.epochs().stats();
        self.latches.stats_into(&mut stats);
        stats
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts `(key, row)` into the tree.
    ///
    /// Inserts crab page latches down the tree and run in parallel with
    /// other inserts (and with all readers); on latch contention the descent
    /// restarts from the root.
    pub fn insert(&self, key: O::Key, row: RowId) -> StorageResult<()> {
        let _gate = self.write_gate.read();
        loop {
            let mut latches = LatchSet::new(&self.latches);
            match self.root() {
                None => {
                    // Serialize root creation on the meta page's latch.
                    if !latches.acquire(self.meta_page) {
                        continue;
                    }
                    if self.root().is_some() {
                        continue; // another writer created the root first
                    }
                    let leaf = Node::<O>::Leaf {
                        items: vec![(key.clone(), row)],
                    };
                    let id = self.store.allocate(&leaf, Some(self.meta_page))?;
                    let _meta = self.meta_lock.lock();
                    self.set_root(Some(id));
                    self.item_count.fetch_add(1, Ordering::Relaxed);
                    self.write_meta_locked()?;
                    break;
                }
                Some(root) => {
                    if !latches.acquire(root.page) {
                        continue;
                    }
                    // Re-check under the latch: the root we captured may have
                    // been relocated before we latched its page.
                    if self.root() != Some(root) {
                        continue;
                    }
                    let ctx = self.ops.root_context();
                    match self.insert_at(root, None, 0, &key, row, &ctx, &mut latches)? {
                        Descent::Done => {
                            drop(latches);
                            let _meta = self.meta_lock.lock();
                            self.item_count.fetch_add(1, Ordering::Relaxed);
                            self.write_meta_locked()?;
                            break;
                        }
                        Descent::Restart => continue,
                    }
                }
            }
        }
        // Opportunistically reclaim records retired past the oldest reader.
        self.store.reclaim()
    }

    /// Inserts every `(key, row)` pair from an iterator, one
    /// [`SpGistTree::insert`] at a time.
    ///
    /// This is the reference insert loop: every key walks the tree from the
    /// root and pages are rewritten as later splits reshape them.  It is the
    /// behavior the equivalence tests compare against; to *load* a known
    /// data set, use [`SpGistTree::bulk_build`], which partitions the whole
    /// set top-down and writes each node exactly once.
    pub fn insert_all<I>(&self, items: I) -> StorageResult<()>
    where
        I: IntoIterator<Item = (O::Key, RowId)>,
    {
        for (key, row) in items {
            self.insert(key, row)?;
        }
        Ok(())
    }

    /// Builds the whole tree from `items` in one pass — the paper's
    /// `spgistbuild` entry point (Section 4).
    ///
    /// The [`BulkBuilder`] recursively applies [`SpGistOps::picksplit`] to
    /// whole partitions top-down, packs leaves to `BucketSize`, allocates
    /// and writes each node exactly once (inner nodes parent-first, their
    /// fixed-width child pointers patched in place), and accumulates the
    /// returned [`TreeStats`] during the build instead of by a traversal.
    /// Classes steer it through [`SpGistOps::bulk_prepare`].
    ///
    /// The tree must be empty; loading into a populated tree is an
    /// [`StorageError::Unsupported`] error.  An empty `items` set is a
    /// no-op.  Query results are identical to inserting the same items with
    /// the insert loop (the tree *shape* may differ — and usually improves:
    /// data-driven classes split on medians, split-once classes decompose
    /// fully).
    ///
    /// [`BulkBuilder`]: crate::build::BulkBuilder
    pub fn bulk_build(&self, items: Vec<(O::Key, RowId)>) -> StorageResult<TreeStats> {
        let _gate = self.write_gate.write();
        if self.root().is_some() || !self.is_empty() {
            return Err(StorageError::Unsupported(
                "bulk_build requires an empty tree; use insert for incremental loads".into(),
            ));
        }
        if items.is_empty() {
            return self.stats();
        }
        let logical = items.len() as u64;
        let meta = self.meta_page;
        // The build writes each page roughly once, front to back — a scan
        // pattern.  Hint the pool so loading one index does not flush every
        // other tree's hot pages; point operations restore Normal below.
        self.store.set_access_hint(AccessHint::Scan);
        let result: StorageResult<_> = (|| {
            let mut builder = crate::build::BulkBuilder::new(&self.ops, &self.store);
            let root = builder.build_root(meta, items)?;
            let stats = builder.finish()?;
            Ok((root, stats))
        })();
        self.store.set_access_hint(AccessHint::Normal);
        let (root, stats) = result?;
        {
            let _meta = self.meta_lock.lock();
            self.set_root(Some(root));
            self.item_count.store(logical, Ordering::Relaxed);
            self.write_meta_locked()?;
        }
        Ok(stats)
    }

    /// One latched descent step.  Invariant on entry: `latches` holds the
    /// parent's page (when `parent` is `Some`) and `node_id`'s page, so this
    /// node cannot be modified or relocated by another writer while we work
    /// on it, and its parent pointer can be patched if *we* relocate it.
    #[allow(clippy::too_many_arguments)]
    fn insert_at(
        &self,
        node_id: NodeId,
        parent: Option<(NodeId, usize)>,
        level: u32,
        key: &O::Key,
        row: RowId,
        ctx: &O::Context,
        latches: &mut LatchSet<'_>,
    ) -> StorageResult<Descent> {
        let node: Node<O> = self.store.read(node_id)?;
        match node {
            Node::Leaf { mut items } => {
                let cfg = self.ops.config();
                items.push((key.clone(), row));
                if items.len() <= cfg.bucket_size || level >= cfg.resolution {
                    self.write_node(node_id, &Node::Leaf { items }, parent)?;
                    return Ok(Descent::Done);
                }
                // The data node is overfull: decompose it with PickSplit.
                let keys: Vec<O::Key> = items.iter().map(|(k, _)| k.clone()).collect();
                let split = self.ops.picksplit(&keys, level, ctx);
                if split.is_degenerate(items.len()) {
                    // No further decomposition is possible (all keys identical
                    // or resolution exhausted); allow the oversized leaf.
                    self.write_node(node_id, &Node::Leaf { items }, parent)?;
                    return Ok(Descent::Done);
                }
                // The replacement subtree is built in fresh, unlinked records
                // (invisible to every other thread) and becomes reachable in
                // one write of the old leaf's record.
                let inner = self.build_split(node_id.page, &items, split, level, ctx)?;
                self.write_node(node_id, &inner, parent)?;
                Ok(Descent::Done)
            }
            Node::Inner { prefix, entries } => {
                let preds: Vec<O::Pred> = entries.iter().map(|e| e.pred.clone()).collect();
                match self.ops.choose(prefix.as_ref(), &preds, key, level) {
                    Choose::Descend(indices) => {
                        let delta = self.ops.descend_levels(prefix.as_ref());
                        // Crab step: this node is where the descent continues,
                        // so no ancestor can be affected anymore — release
                        // them and let writers in other subtrees through.  A
                        // multi-way descend (replicating PMR inserts) keeps
                        // this node protected across its sub-descents, whose
                        // own crab steps would otherwise release it.
                        let multi = indices.len() > 1;
                        if multi {
                            latches.protect(node_id.page);
                        }
                        latches.retain(&[node_id.page]);
                        let mut outcome = Descent::Done;
                        for idx in indices {
                            // Re-read the node: a child relocation during a
                            // previous iteration rewrites our child pointers.
                            let fresh: Node<O> = self.store.read(node_id)?;
                            let Node::Inner {
                                entries: fresh_entries,
                                ..
                            } = fresh
                            else {
                                return Err(StorageError::Corrupt(
                                    "inner node changed kind during insert".into(),
                                ));
                            };
                            let entry = fresh_entries.get(idx).ok_or_else(|| {
                                StorageError::Corrupt(format!(
                                    "choose returned entry {idx} of {}",
                                    fresh_entries.len()
                                ))
                            })?;
                            let child = entry.child;
                            let child_ctx =
                                self.ops
                                    .child_context(ctx, prefix.as_ref(), &entry.pred, level);
                            // Latch the child while still holding this node:
                            // the child pointer we read stays valid until the
                            // child is latched (relocating it requires *our*
                            // latch).
                            if !latches.acquire(child.page) {
                                outcome = Descent::Restart;
                                break;
                            }
                            let descent = self.insert_at(
                                child,
                                Some((node_id, idx)),
                                level + delta,
                                key,
                                row,
                                &child_ctx,
                                latches,
                            )?;
                            if multi {
                                latches.retain(&[node_id.page]);
                            }
                            if matches!(descent, Descent::Restart) {
                                // A restart mid-multi-descend re-runs the whole
                                // insert; partitions already handled may end up
                                // with an extra replica, which replicating
                                // classes tolerate (cursors deduplicate by row
                                // and delete_replicated removes every copy).
                                outcome = Descent::Restart;
                                break;
                            }
                        }
                        if multi {
                            latches.unprotect(node_id.page);
                        }
                        Ok(outcome)
                    }
                    Choose::AddEntry(pred) => {
                        let leaf = Node::<O>::Leaf {
                            items: vec![(key.clone(), row)],
                        };
                        let child = self.store.allocate(&leaf, Some(node_id.page))?;
                        let mut entries = entries;
                        entries.push(Entry { pred, child });
                        self.write_node(node_id, &Node::Inner { prefix, entries }, parent)?;
                        Ok(Descent::Done)
                    }
                    Choose::SplitPrefix {
                        upper_prefix,
                        lower_pred,
                        lower_prefix,
                    } => {
                        // The existing node keeps its content but moves one
                        // level down; a new upper node takes its place (and
                        // usually its NodeId, so the parent pointer stays
                        // valid).
                        let lower = Node::<O>::Inner {
                            prefix: lower_prefix,
                            entries,
                        };
                        let lower_id = self.store.allocate(&lower, Some(node_id.page))?;
                        let upper = Node::<O>::Inner {
                            prefix: upper_prefix,
                            entries: vec![Entry {
                                pred: lower_pred,
                                child: lower_id,
                            }],
                        };
                        let current = self.write_node(node_id, &upper, parent)?;
                        // The restructure is complete and consistent; if the
                        // relocated upper node's page cannot be latched, a
                        // plain restart retries the insert against it.
                        if !latches.acquire(current.page) {
                            return Ok(Descent::Restart);
                        }
                        // Retry the insertion at the restructured node.
                        self.insert_at(current, parent, level, key, row, ctx, latches)
                    }
                }
            }
        }
    }

    /// Builds the inner node replacing an overfull leaf, materializing all
    /// partitions produced by PickSplit (recursively when a partition itself
    /// exceeds the bucket size, unless the instantiation uses the
    /// split-once / PMR rule).
    fn build_split(
        &self,
        near: PageId,
        items: &[(O::Key, RowId)],
        split: PickSplit<O::Prefix, O::Pred>,
        level: u32,
        ctx: &O::Context,
    ) -> StorageResult<Node<O>> {
        let cfg = self.ops.config();
        let mut split = split;
        // A split must never drop items (a PMR segment outside the world
        // rectangle intersects no quadrant): park strays with the insert
        // fallback rule.
        split.park_unassigned(items.len());
        let PickSplit { prefix, partitions } = split;
        let delta = self.ops.descend_levels(prefix.as_ref());
        let mut entries = Vec::with_capacity(partitions.len());
        for (pred, indices) in partitions {
            if indices.is_empty() && cfg.node_shrink == NodeShrink::OmitEmpty {
                continue;
            }
            let part_items: Vec<(O::Key, RowId)> =
                indices.iter().map(|&i| items[i].clone()).collect();
            let child_ctx = self.ops.child_context(ctx, prefix.as_ref(), &pred, level);
            let child = self.build_subtree(near, part_items, level + delta, &child_ctx)?;
            entries.push(Entry { pred, child });
        }
        Ok(Node::Inner { prefix, entries })
    }

    fn build_subtree(
        &self,
        near: PageId,
        items: Vec<(O::Key, RowId)>,
        level: u32,
        ctx: &O::Context,
    ) -> StorageResult<NodeId> {
        let cfg = self.ops.config();
        if items.len() <= cfg.bucket_size || level >= cfg.resolution || cfg.split_once {
            return self.store.allocate(&Node::<O>::Leaf { items }, Some(near));
        }
        let keys: Vec<O::Key> = items.iter().map(|(k, _)| k.clone()).collect();
        let split = self.ops.picksplit(&keys, level, ctx);
        if split.is_degenerate(items.len()) {
            return self.store.allocate(&Node::<O>::Leaf { items }, Some(near));
        }
        let inner = self.build_split(near, &items, split, level, ctx)?;
        self.store.allocate(&inner, Some(near))
    }

    /// Writes `node` at `node_id`, relocating it copy-on-write if it no
    /// longer fits in its page and fixing the parent (or root) pointer.
    /// Returns the node's current address.
    ///
    /// The caller must hold the page latches for `node_id` and the parent
    /// (insert descents do; gate-exclusive paths hold the whole tree).  On
    /// relocation the old record is retired only *after* the parent pointer
    /// flips, so a reader pinned at any moment sees either the old record
    /// (still intact) or the new one — never a dangling pointer.
    fn write_node(
        &self,
        node_id: NodeId,
        node: &Node<O>,
        parent: Option<(NodeId, usize)>,
    ) -> StorageResult<NodeId> {
        let near = parent.map(|(p, _)| p.page).unwrap_or(node_id.page);
        match self.store.update(node_id, node, Some(near))? {
            None => Ok(node_id),
            Some(new_id) => {
                match parent {
                    None => {
                        let _meta = self.meta_lock.lock();
                        self.set_root(Some(new_id));
                        self.write_meta_locked()?;
                    }
                    Some((parent_id, entry_idx)) => {
                        let mut parent_node: Node<O> = self.store.read(parent_id)?;
                        match &mut parent_node {
                            Node::Inner { entries, .. } => {
                                entries
                                    .get_mut(entry_idx)
                                    .ok_or_else(|| {
                                        StorageError::Corrupt(
                                            "parent entry index out of range".into(),
                                        )
                                    })?
                                    .child = new_id;
                            }
                            Node::Leaf { .. } => {
                                return Err(StorageError::Corrupt(
                                    "parent of a relocated node is a leaf".into(),
                                ))
                            }
                        }
                        // The child pointer has a fixed encoded size, so this
                        // update always succeeds in place.
                        if self.store.update(parent_id, &parent_node, None)?.is_some() {
                            return Err(StorageError::Corrupt(
                                "fixed-size parent pointer update relocated the parent".into(),
                            ));
                        }
                    }
                }
                self.store.retire_node(node_id)?;
                Ok(new_id)
            }
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Returns every `(key, row)` item satisfying `query`.
    ///
    /// Spatial instantiations that replicate objects across partitions (the
    /// PMR quadtree) may report the same row id more than once; their
    /// index-level wrappers deduplicate.
    pub fn search(&self, query: &O::Query) -> StorageResult<Vec<(O::Key, RowId)>> {
        self.search_cursor(query.clone()).collect()
    }

    /// Incremental search: returns a pull-based cursor yielding every
    /// matching `(key, row)` item.
    ///
    /// This is the streaming counterpart of [`SpGistTree::search`]: the
    /// traversal advances only as far as the caller pulls, so an executor can
    /// stop early (`LIMIT`-style) without paying for the full result set.
    /// Items are yielded in the same order `search` returns them.
    ///
    /// The cursor takes no latches — it pins a reclamation epoch for its
    /// lifetime, so concurrent writers proceed and the records it can reach
    /// stay readable.  Keep cursors reasonably short-lived: the pinned epoch
    /// delays physical reclamation of records retired after it opened.
    ///
    /// The cursor borrows the tree; to stream through an owning handle
    /// (an `Arc`, say), build it from that handle with
    /// [`SearchCursor::over`].
    pub fn search_cursor(&self, query: O::Query) -> SearchCursor<&Self, O> {
        SearchCursor::over(self, query)
    }

    /// Streams every matching `(key, row)` item to `visit`.
    pub fn search_visit(
        &self,
        query: &O::Query,
        mut visit: impl FnMut(&O::Key, RowId),
    ) -> StorageResult<()> {
        // Pin before capturing the root: everything reachable from this root
        // stays readable for the duration of the traversal.
        let _pin = self.store.pin();
        let Some(root) = self.root() else {
            return Ok(());
        };
        let mut stack = vec![(root, 0u32)];
        while let Some((node_id, level)) = stack.pop() {
            match self.store.read::<O>(node_id)? {
                Node::Leaf { items } => {
                    for (key, row) in &items {
                        if self.ops.leaf_consistent(key, query, level) {
                            visit(key, *row);
                        }
                    }
                }
                Node::Inner { prefix, entries } => {
                    if let Some(p) = &prefix {
                        if !self.ops.prefix_consistent(p, query, level) {
                            continue;
                        }
                    }
                    let delta = self.ops.descend_levels(prefix.as_ref());
                    for entry in &entries {
                        if self
                            .ops
                            .consistent(prefix.as_ref(), &entry.pred, query, level)
                        {
                            stack.push((entry.child, level + delta));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Incremental nearest-neighbour search (paper Section 5): returns an
    /// iterator yielding items in non-decreasing distance from `query`.
    ///
    /// Like [`SpGistTree::search_cursor`], the iterator pins a reclamation
    /// epoch instead of latching; it borrows the tree, and [`NnIter::over`]
    /// builds one from an owning handle instead.
    pub fn nn_iter(&self, query: O::Query) -> NnIter<&Self, O> {
        NnIter::over(self, query)
    }

    /// Convenience wrapper: the `k` nearest items to `query`.
    pub fn nn_search(&self, query: O::Query, k: usize) -> StorageResult<Vec<(O::Key, RowId, f64)>> {
        self.nn_iter(query).take(k).collect()
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Deletes the item `(key, row)`.  Returns `true` if an item was removed.
    pub fn delete(&self, key: &O::Key, row: RowId) -> StorageResult<bool> {
        self.delete_impl(key, row, false)
    }

    /// Deletes every physical occurrence of the item `(key, row)`, counting
    /// it as one logical removal.  Returns `true` if anything was removed.
    ///
    /// Replicating instantiations (the PMR quadtree) store one logical item
    /// in every partition it intersects, while [`SpGistTree::insert`] counts
    /// it once; plain [`SpGistTree::delete`] would remove a single replica
    /// and leave the others reachable.  This method removes the first
    /// matching `(key, row)` occurrence from *every* leaf that holds one and
    /// decrements the item count once.
    pub fn delete_replicated(&self, key: &O::Key, row: RowId) -> StorageResult<bool> {
        self.delete_impl(key, row, true)
    }

    /// Shared deletion: locate leaves holding `(key, row)` by consistent
    /// descent (the first matching item per leaf; one leaf, or every leaf
    /// when `all_replicas` is set), remove the occurrences, and count one
    /// logical removal.
    ///
    /// Deletion takes the write gate exclusively — it excludes other writers
    /// (so its captured node addresses stay valid without crabbing) but not
    /// readers, which epoch pins keep safe across the copy-on-write removal
    /// rewrites.
    fn delete_impl(&self, key: &O::Key, row: RowId, all_replicas: bool) -> StorageResult<bool> {
        let _gate = self.write_gate.write();
        let Some(root) = self.root() else {
            return Ok(false);
        };
        let query = self.ops.key_query(key);
        type Parent = Option<(NodeId, usize)>;
        let mut stack: Vec<(NodeId, u32, Parent)> = vec![(root, 0u32, None)];
        let mut targets: Vec<(NodeId, usize, Parent)> = Vec::new();
        'outer: while let Some((node_id, level, parent)) = stack.pop() {
            match self.store.read::<O>(node_id)? {
                Node::Leaf { items } => {
                    for (idx, (k, r)) in items.iter().enumerate() {
                        if *r == row && self.ops.leaf_consistent(k, &query, level) {
                            if !targets.iter().any(|(id, _, _)| *id == node_id) {
                                targets.push((node_id, idx, parent));
                            }
                            if !all_replicas {
                                break 'outer;
                            }
                            break;
                        }
                    }
                }
                Node::Inner { prefix, entries } => {
                    if let Some(p) = &prefix {
                        if !self.ops.prefix_consistent(p, &query, level) {
                            continue;
                        }
                    }
                    let delta = self.ops.descend_levels(prefix.as_ref());
                    for (idx, entry) in entries.iter().enumerate() {
                        if self
                            .ops
                            .consistent(prefix.as_ref(), &entry.pred, &query, level)
                        {
                            stack.push((entry.child, level + delta, Some((node_id, idx))));
                        }
                    }
                }
            }
        }
        if targets.is_empty() {
            return Ok(false);
        }
        for (leaf_id, item_idx, parent) in targets {
            let mut node: Node<O> = self.store.read(leaf_id)?;
            if let Node::Leaf { items } = &mut node {
                items.remove(item_idx);
            }
            // Shrinking updates normally stay in place; when one relocates
            // anyway, write_node fixes the captured parent pointer (valid
            // under the exclusive gate — only leaves move here).
            self.write_node(leaf_id, &node, parent)?;
        }
        {
            let _meta = self.meta_lock.lock();
            self.item_count.fetch_sub(1, Ordering::Relaxed);
            self.write_meta_locked()?;
        }
        self.store.reclaim()?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Clustering / repacking
    // ------------------------------------------------------------------

    /// Re-clusters the whole tree into fresh pages so that each page holds a
    /// *top portion of a subtree*, minimizing the tree's page height.
    ///
    /// This is the offline counterpart of the paper's clustering technique
    /// (after Diwan et al., "Clustering techniques for minimizing external
    /// path length"): starting from the root, nodes are taken in
    /// breadth-first order into the current page until it is full; every
    /// child that did not fit becomes the root of its own packed page,
    /// recursively.  Along any root-to-leaf path the number of page
    /// transitions is therefore roughly the node height divided by the depth
    /// of a subtree that fits in one page.  The logical tree is unchanged;
    /// only the node→page mapping is rewritten.
    ///
    /// Repacking holds the write gate exclusively but never blocks readers:
    /// the rebuilt layout goes into fresh pages, the root flips atomically,
    /// and the old pages are *retired* — readers pinned on the old layout
    /// keep traversing it until reclamation passes their epoch, after which
    /// the pages return to the pager's free list for reuse.
    pub fn repack(&self) -> StorageResult<()> {
        let _gate = self.write_gate.write();
        let Some(root) = self.root() else {
            return Ok(());
        };
        // From here on every placement goes to freshly allocated pages.
        let old_pages = self.store.begin_repack();
        // The repack reads the old layout once and writes the new one once:
        // a two-sided sweep that must not displace the pool's hot set.
        self.store.set_access_hint(AccessHint::Scan);
        let result = Self::repack_group(&self.store, root);
        self.store.set_access_hint(AccessHint::Normal);
        let new_root = result?;
        {
            let _meta = self.meta_lock.lock();
            self.set_root(Some(new_root));
            self.write_meta_locked()?;
        }
        self.store.finish_repack(&old_pages);
        self.store.reclaim()
    }

    /// Packs the subtree rooted at `old_root` into one fresh page (breadth
    /// first, as many nodes as fit) and recursively packs the subtrees that
    /// spill over.  Returns the new address of the subtree root.
    fn repack_group(store: &NodeStore, old_root: NodeId) -> StorageResult<NodeId> {
        use std::collections::{HashMap, VecDeque};

        // Phase 1: breadth-first selection of the nodes this page will hold.
        // Per-record overhead: 1 byte of record header plus 4 bytes of slot
        // entry; keep headroom so the in-place pointer patching below can
        // never overflow the page.
        const PAGE_BUDGET: usize = spgist_storage::PAGE_SIZE - 128;
        let mut group: Vec<(NodeId, Node<O>)> = Vec::new();
        let mut in_group: HashMap<NodeId, usize> = HashMap::new();
        let mut used = 0usize;
        let mut queue = VecDeque::from([old_root]);
        while let Some(id) = queue.pop_front() {
            if in_group.contains_key(&id) {
                continue;
            }
            let node: Node<O> = store.read_hinted(id, AccessHint::Scan)?;
            let cost = node.encode().len() + 5;
            if !group.is_empty() && used + cost > PAGE_BUDGET {
                // The root always goes in (a single node is guaranteed to
                // fit); later nodes are only taken while the budget lasts.
                continue;
            }
            used += cost;
            in_group.insert(id, group.len());
            if let Node::Inner { entries, .. } = &node {
                for entry in entries {
                    queue.push_back(entry.child);
                }
            }
            group.push((id, node));
        }

        // Phase 2: materialize the group in one fresh page (placeholders keep
        // the final size because child pointers are fixed-width), recursively
        // pack the spilled subtrees, then patch the child pointers in place.
        let page = store.fresh_page()?;
        let mut new_ids = Vec::with_capacity(group.len());
        for (_, node) in &group {
            new_ids.push(store.allocate_in_page(node, page)?);
        }
        for (idx, (_, node)) in group.iter().enumerate() {
            let Node::Inner { prefix, entries } = node else {
                continue;
            };
            let mut new_entries = Vec::with_capacity(entries.len());
            for entry in entries {
                let child = match in_group.get(&entry.child) {
                    Some(&member) => new_ids[member],
                    None => Self::repack_group(store, entry.child)?,
                };
                new_entries.push(Entry {
                    pred: entry.pred.clone(),
                    child,
                });
            }
            let patched = Node::<O>::Inner {
                prefix: prefix.clone(),
                entries: new_entries,
            };
            if store.update(new_ids[idx], &patched, None)?.is_some() {
                return Err(StorageError::Corrupt(
                    "repacked inner node changed size while patching child pointers".into(),
                ));
            }
        }
        Ok(new_ids[0])
    }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    /// Gathers size and height statistics by traversing the whole tree.
    pub fn stats(&self) -> StorageResult<TreeStats> {
        let _pin = self.store.pin();
        let mut stats = TreeStats {
            pages: self.store.page_count() as u64,
            size_bytes: self.store.size_bytes(),
            utilization: self.store.utilization()?,
            ..TreeStats::default()
        };
        let Some(root) = self.root() else {
            return Ok(stats);
        };
        // Depth-first traversal tracking (node depth, pages on path).
        let mut stack: Vec<(NodeId, u32, u32, PageId)> = vec![(root, 1, 1, root.page)];
        while let Some((node_id, node_depth, page_depth, last_page)) = stack.pop() {
            let page_depth = if node_id.page == last_page {
                page_depth
            } else {
                page_depth + 1
            };
            stats.max_node_height = stats.max_node_height.max(node_depth);
            stats.max_page_height = stats.max_page_height.max(page_depth);
            // A stats pass touches every node exactly once.
            match self.store.read_hinted::<O>(node_id, AccessHint::Scan)? {
                Node::Leaf { items } => {
                    stats.leaf_nodes += 1;
                    stats.items += items.len() as u64;
                }
                Node::Inner { entries, .. } => {
                    stats.inner_nodes += 1;
                    for entry in &entries {
                        stack.push((entry.child, node_depth + 1, page_depth, node_id.page));
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Releases every page this tree owns (node pages and the meta page) to
    /// the pager's free list, consuming the tree (`DROP INDEX`).
    ///
    /// The page-ownership list is rebuilt lazily for re-opened trees, so a
    /// tree opened from a file and destroyed immediately only frees the
    /// pages it allocated in this session; trees built (or repacked) in the
    /// current session free everything.
    pub fn destroy(self) -> StorageResult<()> {
        // Consuming the tree proves no reader pins remain, so the retired
        // backlog drains completely before the pages go back.
        self.store.reclaim()?;
        let pool = Arc::clone(self.store.pool());
        for page in self.store.pages() {
            pool.free_page(page)?;
        }
        pool.free_page(self.meta_page)
    }

    pub(crate) fn store(&self) -> &NodeStore {
        &self.store
    }

    pub(crate) fn ops_ref(&self) -> &O {
        &self.ops
    }

    pub(crate) fn root(&self) -> Option<NodeId> {
        unpack_root(self.root_cell.load(Ordering::Acquire))
    }

    /// Only under `meta_lock`.
    fn set_root(&self, root: Option<NodeId>) {
        self.root_cell.store(pack_root(root), Ordering::Release);
    }

    /// Writes the meta record; the caller holds `meta_lock`.
    fn write_meta_locked(&self) -> StorageResult<()> {
        let bytes = encode_meta(self.root(), self.len());
        self.store
            .pool()
            .with_page_mut(self.meta_page, |p| p.update(0, &bytes))??;
        Ok(())
    }
}

/// Pull-based streaming search over an [`SpGistTree`]; created by
/// [`SpGistTree::search_cursor`] or [`SearchCursor::over`].
///
/// The cursor is generic over *how it holds the tree*: any `T` that
/// dereferences to the tree works, so a plain `&SpGistTree` gives the
/// classic borrowing cursor while an `Arc<SpGistTree>` gives a cursor that
/// owns a handle and can outlive the borrow — the mechanism the index
/// wrappers use to stream query results.  Either way the cursor holds no
/// latch: it pins a reclamation epoch at creation, so concurrent writers
/// proceed while everything reachable from the captured root stays
/// readable.
///
/// Yields `StorageResult<(key, row)>`: a page read can fail mid-scan, and a
/// streaming iterator has nowhere else to surface that.  After the first
/// error the cursor is exhausted.
pub struct SearchCursor<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    tree: T,
    query: O::Query,
    /// Inner nodes (and unvisited leaves) still to be expanded, with their
    /// decomposition level.
    stack: Vec<(NodeId, u32)>,
    /// Matching items of the most recently expanded leaf.
    pending: std::vec::IntoIter<(O::Key, RowId)>,
    /// Hint attached to every page fetch this cursor makes.
    hint: AccessHint,
    /// Keeps every record reachable from the captured root readable for the
    /// cursor's lifetime.
    _pin: EpochPin,
    done: bool,
}

impl<T, O> SearchCursor<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    /// Builds a cursor from any owned or borrowed handle on a tree.  The
    /// cursor pins a reclamation epoch (never a latch) for its lifetime.
    pub fn over(tree: T, query: O::Query) -> Self {
        // Pin first, then capture the root: records retired after this point
        // outlive the pin, so the captured root stays traversable.
        let pin = tree.store.pin();
        let stack = tree.root().map(|root| vec![(root, 0)]).unwrap_or_default();
        SearchCursor {
            tree,
            query,
            stack,
            pending: Vec::new().into_iter(),
            hint: AccessHint::Normal,
            _pin: pin,
            done: false,
        }
    }

    /// Attaches an [`AccessHint`] to every page fetch this cursor makes.
    ///
    /// Selective queries keep the default [`AccessHint::Normal`]: SP-GiST
    /// clustering packs inner and leaf nodes onto shared pages, so the
    /// pages a query re-descends are exactly the ones worth promoting.
    /// Callers enumerating a large fraction of the index (analytics-style
    /// sweeps) pass [`AccessHint::Scan`] to keep the one-touch leaf pages
    /// out of the pool's protected set.
    pub fn with_hint(mut self, hint: AccessHint) -> Self {
        self.hint = hint;
        self
    }
}

impl<T, O> Iterator for SearchCursor<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    type Item = StorageResult<(O::Key, RowId)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(item) = self.pending.next() {
                return Some(Ok(item));
            }
            let Some((node_id, level)) = self.stack.pop() else {
                self.done = true;
                return None;
            };
            let ops = &self.tree.ops;
            match self.tree.store.read_hinted::<O>(node_id, self.hint) {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(Node::Leaf { items }) => {
                    let matched: Vec<(O::Key, RowId)> = items
                        .into_iter()
                        .filter(|(key, _)| ops.leaf_consistent(key, &self.query, level))
                        .collect();
                    self.pending = matched.into_iter();
                }
                Ok(Node::Inner { prefix, entries }) => {
                    if let Some(p) = &prefix {
                        if !ops.prefix_consistent(p, &self.query, level) {
                            continue;
                        }
                    }
                    let delta = ops.descend_levels(prefix.as_ref());
                    for entry in &entries {
                        if ops.consistent(prefix.as_ref(), &entry.pred, &self.query, level) {
                            self.stack.push((entry.child, level + delta));
                        }
                    }
                }
            }
        }
    }
}

impl<T, O> std::fmt::Debug for SearchCursor<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchCursor")
            .field("stack_depth", &self.stack.len())
            .field("done", &self.done)
            .finish()
    }
}

impl<O: SpGistOps> std::fmt::Debug for SpGistTree<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpGistTree")
            .field("items", &self.len())
            .field("root", &self.root())
            .field("meta_page", &self.meta_page)
            .finish()
    }
}

/// Fixed-size meta record: root presence flag, root address, item count.
fn encode_meta(root: Option<NodeId>, item_count: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(15);
    match root {
        Some(id) => {
            out.push(1);
            id.page.encode(&mut out);
            id.slot.encode(&mut out);
        }
        None => {
            out.push(0);
            0u32.encode(&mut out);
            0u16.encode(&mut out);
        }
    }
    item_count.encode(&mut out);
    out
}

fn decode_meta(bytes: &[u8]) -> StorageResult<(Option<NodeId>, u64)> {
    let mut buf = bytes;
    let flag = u8::decode(&mut buf)?;
    let page = u32::decode(&mut buf)?;
    let slot = u16::decode(&mut buf)?;
    let count = u64::decode(&mut buf)?;
    let root = if flag == 1 {
        Some(NodeId::new(page, slot))
    } else {
        None
    };
    Ok((root, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusteringPolicy;
    use crate::testing::DigitTrieOps;
    use spgist_storage::{BufferPoolConfig, FilePager, MemPager};

    fn new_tree() -> SpGistTree<DigitTrieOps> {
        SpGistTree::create(BufferPool::in_memory(), DigitTrieOps::default()).unwrap()
    }

    #[test]
    fn root_codec_roundtrip() {
        let cases = [
            None,
            Some(NodeId::new(0, 0)),
            Some(NodeId::new(7, 3)),
            Some(NodeId::new(u32::MAX, u16::MAX)),
        ];
        for root in cases {
            assert_eq!(unpack_root(pack_root(root)), root);
        }
    }

    #[test]
    fn empty_tree_has_no_matches() {
        let tree = new_tree();
        assert!(tree.is_empty());
        assert!(tree.search(&42).unwrap().is_empty());
        assert_eq!(tree.stats().unwrap().items, 0);
    }

    #[test]
    fn insert_and_exact_search() {
        let tree = new_tree();
        for key in [1u32, 12, 123, 1234, 2, 23, 42, 421, 4242] {
            tree.insert(key, u64::from(key) * 10).unwrap();
        }
        assert_eq!(tree.len(), 9);
        assert_eq!(tree.search(&123).unwrap(), vec![(123, 1230)]);
        assert_eq!(tree.search(&4242).unwrap(), vec![(4242, 42420)]);
        assert!(tree.search(&999).unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_are_all_returned() {
        let tree = new_tree();
        tree.insert(77, 1).unwrap();
        tree.insert(77, 2).unwrap();
        tree.insert(77, 3).unwrap();
        let mut rows: Vec<u64> = tree
            .search(&77)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn splits_produce_searchable_tree() {
        let tree = new_tree();
        // Far more keys than one bucket: forces repeated PickSplit calls.
        for key in 0..500u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        for key in (0..500u32).step_by(17) {
            assert_eq!(tree.search(&key).unwrap(), vec![(key, u64::from(key))]);
        }
        let stats = tree.stats().unwrap();
        assert_eq!(stats.items, 500);
        assert!(
            stats.inner_nodes > 0,
            "bucket overflow must create inner nodes"
        );
        assert!(stats.max_node_height > 1);
    }

    #[test]
    fn delete_removes_only_the_requested_row() {
        let tree = new_tree();
        for key in 0..100u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        assert!(tree.delete(&50, 50).unwrap());
        assert!(
            !tree.delete(&50, 50).unwrap(),
            "second delete finds nothing"
        );
        assert!(tree.search(&50).unwrap().is_empty());
        assert_eq!(tree.search(&51).unwrap(), vec![(51, 51)]);
        assert_eq!(tree.len(), 99);
    }

    #[test]
    fn stats_track_pages_and_heights() {
        let tree = new_tree();
        for key in 0..2000u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        let stats = tree.stats().unwrap();
        assert_eq!(stats.items, 2000);
        assert!(stats.total_nodes() >= stats.leaf_nodes);
        assert!(stats.max_page_height <= stats.max_node_height);
        assert!(stats.pages >= 1);
        assert!(stats.size_bytes >= stats.pages * 8192);
        assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
    }

    #[test]
    fn clustering_reduces_page_height() {
        let keys: Vec<u32> = (0..3000).collect();

        let clustered_cfg = DigitTrieOps::default().config();
        let clustered = SpGistTree::create(
            BufferPool::in_memory(),
            DigitTrieOps::with_config(clustered_cfg),
        )
        .unwrap();

        let naive_cfg = clustered_cfg.with_clustering(ClusteringPolicy::NewPagePerNode);
        let naive = SpGistTree::create(
            BufferPool::in_memory(),
            DigitTrieOps::with_config(naive_cfg),
        )
        .unwrap();

        for &k in &keys {
            clustered.insert(k, u64::from(k)).unwrap();
            naive.insert(k, u64::from(k)).unwrap();
        }
        let clustered_stats = clustered.stats().unwrap();
        let naive_stats = naive.stats().unwrap();
        assert_eq!(
            clustered_stats.max_node_height, naive_stats.max_node_height,
            "clustering must not change the logical tree"
        );
        assert!(
            clustered_stats.max_page_height < naive_stats.max_page_height,
            "parent-first clustering ({}) must beat one-node-per-page ({})",
            clustered_stats.max_page_height,
            naive_stats.max_page_height
        );
        assert!(clustered_stats.pages < naive_stats.pages);
    }

    #[test]
    fn repack_preserves_contents_and_reduces_page_height() {
        let tree = new_tree();
        for key in 0..5000u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        let before = tree.stats().unwrap();
        tree.repack().unwrap();
        let after = tree.stats().unwrap();
        assert_eq!(after.items, before.items);
        assert_eq!(after.max_node_height, before.max_node_height);
        assert!(
            after.max_page_height <= before.max_page_height,
            "repacking must not worsen page height ({} -> {})",
            before.max_page_height,
            after.max_page_height
        );
        // Everything is still searchable after re-clustering.
        for key in (0..5000u32).step_by(487) {
            assert_eq!(tree.search(&key).unwrap(), vec![(key, u64::from(key))]);
        }
        // Deletes and inserts keep working on the repacked tree.
        assert!(tree.delete(&1234, 1234).unwrap());
        tree.insert(99999, 1).unwrap();
        assert_eq!(tree.search(&99999).unwrap(), vec![(99999, 1)]);
    }

    #[test]
    fn repack_returns_old_pages_for_reuse() {
        let pool = BufferPool::in_memory();
        let tree = SpGistTree::create(Arc::clone(&pool), DigitTrieOps::default()).unwrap();
        for key in 0..3000u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        // Repeated delete-then-insert churn plus repacks must not grow the
        // underlying store: freed pages go on the free list and come back.
        // Rounds 0-1 reach the steady state (the first repack trades the
        // online clustering's tight packing for page-height-minimizing
        // groups); later identical rounds must be served entirely from
        // recycled pages.
        let mut steady_state = 0;
        for round in 0..4 {
            for key in (0..3000u32).step_by(7) {
                tree.delete(&key, u64::from(key)).unwrap();
            }
            for key in (0..3000u32).step_by(7) {
                tree.insert(key, u64::from(key)).unwrap();
            }
            tree.repack().unwrap();
            if round == 1 {
                steady_state = pool.page_count();
                assert!(
                    pool.free_page_count() > 0,
                    "repack must return its old pages to the free list"
                );
            } else if round > 1 {
                assert_eq!(
                    pool.page_count(),
                    steady_state,
                    "round {round}: repack must recycle its old pages"
                );
            }
        }
        assert_eq!(tree.search(&7).unwrap(), vec![(7, 7)]);
        assert_eq!(tree.len(), 3000);
    }

    #[test]
    fn insert_all_matches_individual_inserts() {
        let bulk = new_tree();
        bulk.insert_all((0..200u32).map(|k| (k, u64::from(k))))
            .unwrap();
        let single = new_tree();
        for k in 0..200u32 {
            single.insert(k, u64::from(k)).unwrap();
        }
        for k in (0..200u32).step_by(13) {
            assert_eq!(bulk.search(&k).unwrap(), single.search(&k).unwrap());
        }
    }

    #[test]
    fn bulk_build_matches_insert_loop_results() {
        let items: Vec<(u32, u64)> = (0..2500u32).map(|k| (k, u64::from(k))).collect();
        let bulk = new_tree();
        let build_stats = bulk.bulk_build(items.clone()).unwrap();
        let loop_tree = new_tree();
        loop_tree.insert_all(items).unwrap();

        assert_eq!(bulk.len(), loop_tree.len());
        for k in (0..2500u32).step_by(97) {
            assert_eq!(bulk.search(&k).unwrap(), loop_tree.search(&k).unwrap());
        }
        assert!(bulk.search(&9999).unwrap().is_empty());

        // The stats accumulated during the build agree with a traversal.
        let traversed = bulk.stats().unwrap();
        assert_eq!(build_stats, traversed, "build-time stats match traversal");
        assert!(build_stats.items >= 2500);
        assert!(build_stats.inner_nodes > 0);
        assert!(build_stats.max_page_height <= build_stats.max_node_height);

        // The bulk-built tree stays fully updatable.
        assert!(bulk.delete(&1234, 1234).unwrap());
        bulk.insert(100_000, 7).unwrap();
        assert_eq!(bulk.search(&100_000).unwrap(), vec![(100_000, 7)]);
    }

    #[test]
    fn bulk_build_requires_an_empty_tree() {
        let tree = new_tree();
        tree.insert(1, 1).unwrap();
        assert!(tree.bulk_build(vec![(2, 2)]).is_err());
        // The failed build leaves the tree untouched.
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.search(&1).unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn bulk_build_of_nothing_is_a_noop() {
        let tree = new_tree();
        let stats = tree.bulk_build(Vec::new()).unwrap();
        assert_eq!(stats.items, 0);
        assert!(tree.is_empty());
        tree.insert(5, 5).unwrap();
        assert_eq!(tree.search(&5).unwrap(), vec![(5, 5)]);
    }

    #[test]
    fn bulk_build_handles_all_equal_keys() {
        let tree = new_tree();
        let stats = tree
            .bulk_build((0..300).map(|row| (42u32, row as u64)).collect())
            .unwrap();
        assert_eq!(tree.len(), 300);
        assert_eq!(stats.items, 300);
        let mut rows: Vec<u64> = tree
            .search(&42)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        rows.sort_unstable();
        assert_eq!(rows.len(), 300);
        assert_eq!(rows[0], 0);
        assert_eq!(rows[299], 299);
    }

    #[test]
    fn bulk_build_writes_fewer_pages_than_the_insert_loop() {
        // An eviction-bounded pool (far smaller than the tree) is where the
        // write-once property shows: the insert loop re-dirties hot pages
        // which the evictor writes back over and over, while the bulk build
        // touches each page once plus the patch of its inner nodes.
        let mut items: Vec<(u32, u64)> = (0..6000u32).map(|k| (k, u64::from(k))).collect();
        // Deterministic shuffle: sequential keys would land consecutive
        // inserts on the same leaf page and hide the re-dirtying cost.
        let mut state = 0x5eed_5eedu64;
        for i in (1..items.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            items.swap(i, (state >> 33) as usize % (i + 1));
        }
        let bounded_pool = || {
            Arc::new(BufferPool::new(
                Arc::new(MemPager::new()),
                BufferPoolConfig {
                    capacity: 8,
                    ..Default::default()
                },
            ))
        };

        let loop_pool = bounded_pool();
        let loop_tree =
            SpGistTree::create(Arc::clone(&loop_pool), DigitTrieOps::default()).unwrap();
        loop_pool.reset_stats();
        loop_tree.insert_all(items.clone()).unwrap();
        loop_pool.flush_all().unwrap();
        let loop_writes = loop_pool.stats().physical_writes;

        let bulk_pool = bounded_pool();
        let bulk_tree =
            SpGistTree::create(Arc::clone(&bulk_pool), DigitTrieOps::default()).unwrap();
        bulk_pool.reset_stats();
        bulk_tree.bulk_build(items).unwrap();
        bulk_pool.flush_all().unwrap();
        let bulk_writes = bulk_pool.stats().physical_writes;

        assert!(
            bulk_writes * 2 < loop_writes,
            "bulk build must write far fewer pages than the insert loop under eviction \
             (bulk {bulk_writes}, loop {loop_writes})"
        );
        assert_eq!(bulk_tree.len(), 6000);
        assert_eq!(bulk_tree.search(&4242).unwrap(), vec![(4242, 4242)]);
    }

    #[test]
    fn persists_and_reopens_from_file() {
        let dir = std::env::temp_dir().join(format!("spgist-tree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.pages");
        let meta;
        {
            let pool = Arc::new(BufferPool::new(
                Arc::new(FilePager::create(&path).unwrap()),
                BufferPoolConfig {
                    capacity: 64,
                    ..Default::default()
                },
            ));
            let tree = SpGistTree::create(pool.clone(), DigitTrieOps::default()).unwrap();
            for key in 0..300u32 {
                tree.insert(key, u64::from(key)).unwrap();
            }
            meta = tree.meta_page();
            pool.flush_all().unwrap();
        }
        {
            let pool = Arc::new(BufferPool::new(
                Arc::new(FilePager::open(&path).unwrap()),
                BufferPoolConfig {
                    capacity: 64,
                    ..Default::default()
                },
            ));
            let tree = SpGistTree::open(pool, DigitTrieOps::default(), meta).unwrap();
            assert_eq!(tree.len(), 300);
            assert_eq!(tree.search(&123).unwrap(), vec![(123, 123)]);
            assert_eq!(tree.search(&299).unwrap(), vec![(299, 299)]);
            assert!(tree.search(&300).unwrap().is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nn_search_orders_by_distance() {
        let tree = new_tree();
        for key in [10u32, 20, 30, 40, 500, 600, 9000] {
            tree.insert(key, u64::from(key)).unwrap();
        }
        let neighbours = tree.nn_search(33, 3).unwrap();
        let keys: Vec<u32> = neighbours.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec![30, 40, 20]);
        let dists: Vec<f64> = neighbours.iter().map(|(_, _, d)| *d).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn small_buffer_pool_still_correct_under_eviction() {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity: 4,
                ..Default::default()
            },
        ));
        let tree = SpGistTree::create(pool, DigitTrieOps::default()).unwrap();
        for key in 0..1500u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        for key in (0..1500u32).step_by(101) {
            assert_eq!(tree.search(&key).unwrap(), vec![(key, u64::from(key))]);
        }
        let io = tree.pool().stats();
        assert!(io.evictions > 0, "a 4-frame pool must evict while building");
    }

    #[test]
    fn search_cursor_streams_the_same_results_as_search() {
        let tree = new_tree();
        for key in 0..800u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        for probe in [0u32, 17, 799, 999] {
            let eager = tree.search(&probe).unwrap();
            let streamed: Vec<(u32, u64)> = tree
                .search_cursor(probe)
                .collect::<StorageResult<_>>()
                .unwrap();
            assert_eq!(streamed, eager, "probe {probe}");
        }
        // Early termination: pulling one item must not require a full scan.
        let first = tree.search_cursor(42).next().unwrap().unwrap();
        assert_eq!(first, (42, 42));
    }

    #[test]
    fn search_cursor_on_empty_tree_is_empty() {
        let tree = new_tree();
        assert!(tree.search_cursor(7).next().is_none());
    }

    #[test]
    fn delete_replicated_removes_item_and_counts_once() {
        let tree = new_tree();
        for key in 0..50u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        assert!(tree.delete_replicated(&30, 30).unwrap());
        assert!(!tree.delete_replicated(&30, 30).unwrap());
        assert!(tree.search(&30).unwrap().is_empty());
        assert_eq!(tree.len(), 49);
    }

    #[test]
    fn meta_codec_roundtrip() {
        let cases = [
            (None, 0u64),
            (Some(NodeId::new(3, 9)), 12345u64),
            (Some(NodeId::new(u32::MAX, u16::MAX)), u64::MAX),
        ];
        for (root, count) in cases {
            let bytes = encode_meta(root, count);
            assert_eq!(decode_meta(&bytes).unwrap(), (root, count));
        }
    }

    #[test]
    fn open_cursor_does_not_block_writers() {
        // Under the old tree-wide RwLock this was impossible: insert took
        // `&mut self`, so a live cursor (holding the shared borrow) excluded
        // every writer.  Now the cursor pins an epoch and writers proceed.
        let tree = new_tree();
        for key in 0..300u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        let mut cursor = tree.search_cursor(42);
        assert_eq!(cursor.next().unwrap().unwrap(), (42, 42));
        // Churn the tree hard while the cursor is live: splits relocate and
        // retire records, but the pinned epoch keeps the cursor's view
        // readable.
        for key in 300..900u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        assert!(cursor.next().is_none());
        drop(cursor);
        // With the pin gone, the next writer drains the retired backlog.
        tree.insert(900, 900).unwrap();
        assert_eq!(tree.concurrency_stats().retired_backlog, 0);
        assert_eq!(tree.len(), 901);
    }

    #[test]
    fn two_writers_splitting_shared_leaves_lose_no_inserts() {
        // Deterministic collision workload: both threads insert interleaved
        // keys (evens vs odds) that land in the same prefix partitions, so
        // every leaf split is contended.  Starting from an empty tree also
        // exercises the racy root creation.
        let tree = Arc::new(new_tree());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2u32)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..400u32 {
                        let key = i * 2 + t;
                        tree.insert(key, u64::from(key)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len(), 800, "no insert may be lost");
        for key in 0..800u32 {
            assert_eq!(
                tree.search(&key).unwrap(),
                vec![(key, u64::from(key))],
                "key {key} must be reachable"
            );
        }
        let stats = tree.stats().unwrap();
        assert_eq!(stats.items, 800);
    }

    #[test]
    fn concurrency_stats_count_latches_and_pins() {
        let tree = new_tree();
        for key in 0..200u32 {
            tree.insert(key, u64::from(key)).unwrap();
        }
        let _ = tree.search(&5).unwrap();
        let stats = tree.concurrency_stats();
        assert!(stats.latch_acquisitions > 0, "inserts crab page latches");
        assert!(stats.epoch_pins > 0, "searches pin epochs");
        assert_eq!(stats.active_pins, 0, "no cursor is live");
        assert_eq!(stats.retired_backlog, 0, "unpinned retires drain");
    }
}
