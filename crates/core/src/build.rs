//! The bulk-build pipeline: `spgistbuild` (paper Section 4).
//!
//! [`SpGistTree::insert`] grows a tree one key at a time: every key walks
//! from the root, and an overfull data node is decomposed only when the
//! insertion that overfills it arrives — so a page hosting a busy subtree is
//! rewritten over and over as later splits reshape it.  That is the right
//! behavior online, and the wrong algorithm for loading a known data set.
//!
//! [`BulkBuilder`] is the dedicated index-build entry point instead: it takes
//! the *whole* `(key, row)` set, recursively applies
//! [`SpGistOps::picksplit`] to whole partitions top-down, packs data nodes to
//! `BucketSize`, and allocates every node exactly once.  Inner nodes are
//! materialized parent-first with fixed-width placeholder child pointers that
//! are patched in place once the children exist (the same trick the offline
//! repacker uses), so the node→page clustering sees parents before children
//! and subtrees stay physically together.  [`TreeStats`] are accumulated
//! *during* the build — node counts, items, node/page heights — instead of by
//! the usual whole-tree traversal.
//!
//! Two deliberate differences from the insertion path:
//!
//! * `SpGistConfig::split_once` (the PMR splitting rule: decompose once per
//!   *insertion*, tolerating temporarily overfull children) is an online
//!   rule; with the full data set in hand the builder decomposes every
//!   partition down to the bucket size, which only tightens the invariant
//!   queries rely on.  A bulk-built PMR quadtree therefore answers the same
//!   queries as an insert-built one from a (usually) shallower, fuller tree.
//!   The one brake: a split that copies the whole input into two or more
//!   partitions ([`PickSplit::replicates_without_separating`] — identical or
//!   heavily overlapping segments past the threshold) ends in an oversized
//!   leaf, since recursing would multiply replicas without separating
//!   anything.
//! * Items that [`SpGistOps::picksplit`] assigns to *no* partition (a PMR
//!   segment outside the world rectangle) are parked in the first partition,
//!   mirroring the `Choose::Descend(vec![0])` fallback of the insert path,
//!   so nothing silently disappears during a build.
//!
//! Classes steer the builder through [`SpGistOps::bulk_prepare`]: the trie
//! sorts keys so sibling runs are contiguous, the kd-tree and point quadtree
//! move a spatial median to the front so the data-driven `picksplit` cuts
//! partitions in half instead of wherever insertion order happened to put
//! the first key.

use spgist_storage::{PageId, StorageError, StorageResult};

use crate::config::NodeShrink;
use crate::node::{Entry, Node, NodeId};
use crate::ops::{PickSplit, SpGistOps};
use crate::stats::TreeStats;
use crate::store::NodeStore;
use crate::RowId;

/// One bulk build over an empty tree's node store; created by
/// [`SpGistTree::bulk_build`](crate::SpGistTree::bulk_build), which owns the
/// precondition checks and the root/meta bookkeeping.
pub struct BulkBuilder<'a, O: SpGistOps> {
    ops: &'a O,
    store: &'a NodeStore,
    stats: TreeStats,
}

impl<'a, O: SpGistOps> BulkBuilder<'a, O> {
    pub(crate) fn new(ops: &'a O, store: &'a NodeStore) -> Self {
        BulkBuilder {
            ops,
            store,
            stats: TreeStats::default(),
        }
    }

    /// Builds the whole tree from `items`, preferring pages near `near` for
    /// the root, and returns the root's address.
    pub(crate) fn build_root(
        &mut self,
        near: PageId,
        items: Vec<(O::Key, RowId)>,
    ) -> StorageResult<NodeId> {
        let ctx = self.ops.root_context();
        self.build_partition(near, None, 0, 1, items, 0, &ctx)
    }

    /// The statistics accumulated while building, completed with the store's
    /// size figures.
    pub(crate) fn finish(self) -> StorageResult<TreeStats> {
        let mut stats = self.stats;
        stats.pages = self.store.page_count() as u64;
        stats.size_bytes = self.store.size_bytes();
        stats.utilization = self.store.utilization()?;
        Ok(stats)
    }

    /// Recursively builds the subtree holding `items`, which the caller
    /// reaches at decomposition depth `level` through traversal context
    /// `ctx`.  `parent_page`/`path_pages` track the distinct pages on the
    /// root-to-here path for the page-height statistic; `node_depth` is the
    /// node height of the node about to be created.
    #[allow(clippy::too_many_arguments)]
    fn build_partition(
        &mut self,
        near: PageId,
        parent_page: Option<PageId>,
        path_pages: u32,
        node_depth: u32,
        mut items: Vec<(O::Key, RowId)>,
        level: u32,
        ctx: &O::Context,
    ) -> StorageResult<NodeId> {
        let cfg = self.ops.config();
        let split = if items.len() <= cfg.bucket_size || level >= cfg.resolution {
            None
        } else {
            self.ops.bulk_prepare(&mut items, level, ctx);
            let keys: Vec<O::Key> = items.iter().map(|(k, _)| k.clone()).collect();
            let mut split = self.ops.picksplit(&keys, level, ctx);
            // A split must never drop items (a PMR segment outside the
            // world rectangle intersects no quadrant): park strays with the
            // insert fallback rule before judging progress.
            split.park_unassigned(items.len());
            // Degenerate splits end the recursion with an oversized leaf.
            // Beyond the insert path's check, a replicating picksplit (PMR)
            // that copies the *whole* input into two or more partitions has
            // separated nothing — recursing would multiply identical
            // replicas level after level (identical or heavily overlapping
            // segments past the splitting threshold) all the way to the
            // resolution.  The insert path is shielded from this by the
            // once-per-insert PMR rule; the builder stops here instead.
            (!split.is_degenerate(items.len()) && !split.replicates_without_separating(items.len()))
                .then_some(split)
        };
        let Some(split) = split else {
            let len = items.len() as u64;
            let id = self
                .store
                .allocate(&Node::<O>::Leaf { items }, Some(near))?;
            self.note_node(id.page, parent_page, path_pages, node_depth);
            self.stats.leaf_nodes += 1;
            self.stats.items += len;
            return Ok(id);
        };

        let PickSplit { prefix, partitions } = split;
        let delta = self.ops.descend_levels(prefix.as_ref());
        let kept: Vec<(O::Pred, Vec<usize>)> = partitions
            .into_iter()
            .filter(|(_, members)| {
                !(members.is_empty() && cfg.node_shrink == NodeShrink::OmitEmpty)
            })
            .collect();

        // Materialize the inner node first with placeholder child pointers
        // (fixed encoded width, so the in-place patch below cannot change
        // the record size), then build the children near it.
        let placeholder = Node::<O>::Inner {
            prefix: prefix.clone(),
            entries: kept
                .iter()
                .map(|(pred, _)| Entry {
                    pred: pred.clone(),
                    child: NodeId::new(0, 0),
                })
                .collect(),
        };
        let inner_id = self.store.allocate(&placeholder, Some(near))?;
        let my_path = self.note_node(inner_id.page, parent_page, path_pages, node_depth);
        self.stats.inner_nodes += 1;

        let mut entries = Vec::with_capacity(kept.len());
        for (pred, members) in kept {
            let part_items: Vec<(O::Key, RowId)> =
                members.iter().map(|&idx| items[idx].clone()).collect();
            let child_ctx = self.ops.child_context(ctx, prefix.as_ref(), &pred, level);
            let child = self.build_partition(
                inner_id.page,
                Some(inner_id.page),
                my_path,
                node_depth + 1,
                part_items,
                level + delta,
                &child_ctx,
            )?;
            entries.push(Entry { pred, child });
        }
        let patched = Node::<O>::Inner { prefix, entries };
        if self.store.update(inner_id, &patched, None)?.is_some() {
            return Err(StorageError::Corrupt(
                "bulk-built inner node relocated while patching fixed-width child pointers".into(),
            ));
        }
        Ok(inner_id)
    }

    /// Records a node placed at `page` into the height statistics and
    /// returns the number of distinct pages on the root-to-it path.
    fn note_node(
        &mut self,
        page: PageId,
        parent_page: Option<PageId>,
        path_pages: u32,
        node_depth: u32,
    ) -> u32 {
        let my_path = match parent_page {
            Some(parent) if parent == page => path_pages,
            _ => path_pages + 1,
        };
        self.stats.max_node_height = self.stats.max_node_height.max(node_depth);
        self.stats.max_page_height = self.stats.max_page_height.max(my_path);
        my_path
    }
}

impl<O: SpGistOps> std::fmt::Debug for BulkBuilder<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BulkBuilder")
            .field("stats", &self.stats)
            .finish()
    }
}
