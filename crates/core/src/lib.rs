//! SP-GiST: Space-Partitioning Generalized Search Trees.
//!
//! This crate is the Rust realization of the SP-GiST framework described in
//! *"Space-Partitioning Trees in PostgreSQL: Realization and Performance"*
//! (Eltabakh, Eltarras, Aref — ICDE 2006).  SP-GiST is an extensible indexing
//! framework for the class of **space-partitioning trees** — tries, quadtrees,
//! kd-trees, suffix trees — whose defining property is that they decompose the
//! space into *disjoint* partitions.
//!
//! The split of responsibilities follows the paper exactly:
//!
//! * **Internal methods** (this crate, [`tree::SpGistTree`]) are shared by all
//!   instantiations: generalized insert, search, delete, bulk build, and the
//!   incremental nearest-neighbour search of Section 5 ([`nn`]).  They also own
//!   the node→page **clustering** that packs many small tree nodes into 8 KiB
//!   disk pages ([`store`]), which the paper credits for keeping the trie's
//!   *page* height on par with the B⁺-tree even though its *node* height is far
//!   larger (Figures 11 and 12).
//! * **External methods and interface parameters** ([`ops::SpGistOps`],
//!   [`config::SpGistConfig`]) are what a developer writes to instantiate a new
//!   index: `consistent`, `picksplit`, `choose`, the NN distance functions, and
//!   the parameters `PathShrink`, `NodeShrink`, `BucketSize`,
//!   `NoOfSpacePartitions`, and `Resolution` from the paper's Table 1.
//!
//! The concrete instantiations used in the paper's evaluation (patricia trie,
//! suffix tree, kd-tree, point quadtree, PMR quadtree) live in the
//! `spgist-indexes` crate; the storage substrate (pages, buffer pool) lives in
//! `spgist-storage`.
//!
//! # Example
//!
//! Instantiating an index is a matter of implementing [`ops::SpGistOps`]; see
//! the digit-trie used by this crate's own tests
//! (`tests/digit_trie.rs`-style instantiations in the `spgist-indexes` crate
//! are the full-featured versions).
//!
//! ```
//! use std::sync::Arc;
//! use spgist_storage::BufferPool;
//! use spgist_core::testing::DigitTrieOps;
//! use spgist_core::SpGistTree;
//!
//! let pool = BufferPool::in_memory();
//! let tree = SpGistTree::create(Arc::clone(&pool), DigitTrieOps::default()).unwrap();
//! for key in [42u32, 7, 123, 99, 4242] {
//!     tree.insert(key, u64::from(key)).unwrap();
//! }
//! assert_eq!(tree.search(&42).unwrap(), vec![(42, 42)]);
//! assert_eq!(tree.stats().unwrap().items, 5);
//! ```
//!
//! Every tree method takes `&self`: readers pin a reclamation epoch and run
//! latch-free, writers crab per-page latches down the tree, so an
//! `Arc<SpGistTree<_>>` is shared across threads directly (see the
//! concurrency notes on [`tree::SpGistTree`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod config;
pub mod nn;
pub mod node;
pub mod ops;
pub mod stats;
pub mod store;
pub mod testing;
pub mod tree;

pub use build::BulkBuilder;
pub use config::{ClusteringPolicy, NodeShrink, PathShrink, SpGistConfig};
pub use nn::NnIter;
pub use node::{Node, NodeId};
pub use ops::{Choose, PickSplit, SpGistOps};
pub use stats::TreeStats;
pub use store::NodeStore;
pub use tree::{SearchCursor, SpGistTree};

pub use spgist_storage::{ConcurrencyStats, EpochPin};

/// Row identifier stored alongside every key in leaf nodes — the analog of a
/// PostgreSQL heap tuple pointer.
pub type RowId = u64;
