//! Interface parameters of the SP-GiST framework (paper Section 3.1).

use spgist_storage::{Codec, StorageError, StorageResult};

/// How the index tree shrinks single-child paths (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathShrink {
    /// No shrinking: one decomposition per level.
    NeverShrink,
    /// Shrink single-child chains only at the leaf level (patricia-style).
    LeafShrink,
    /// Shrink single-child chains anywhere in the tree: inner nodes carry a
    /// multi-level prefix predicate.
    TreeShrink,
}

/// Whether empty partitions are kept in the tree (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeShrink {
    /// Keep all partitions, even empty ones (space-driven trees such as the
    /// PMR quadtree keep all four quadrants).
    KeepEmpty,
    /// Omit empty partitions (forest trie); children are added on demand.
    OmitEmpty,
}

/// Policy used by the node→page clustering when placing a new tree node.
///
/// The paper relies on the clustering technique of Diwan et al. to generate
/// minimum page-height trees.  We implement a greedy approximation and expose
/// it as a policy so its effect can be ablated (bench `ablation_clustering`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringPolicy {
    /// Try the parent's page first, then recently opened pages, then a new
    /// page.  This keeps subtrees physically together and minimizes the
    /// page height observed along root-to-leaf paths (the default).
    ParentFirst,
    /// Ignore the parent: place the node in the first tracked page with
    /// enough space.
    FirstFit,
    /// Allocate a fresh page for every node — the naive mapping the paper
    /// warns about ("tree nodes are usually much smaller than disk pages").
    NewPagePerNode,
}

/// The SP-GiST interface parameters (paper Section 3.1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpGistConfig {
    /// Number of disjoint partitions produced at each decomposition
    /// (`NoOfSpacePartitions`): 27 for the dictionary trie, 2 for the kd-tree,
    /// 4 for quadtrees.
    pub partitions: u32,
    /// Maximum number of data items a leaf (data) node can hold
    /// (`BucketSize`).
    pub bucket_size: usize,
    /// Maximum number of space decompositions (`Resolution`); beyond this
    /// depth leaves are allowed to grow past `bucket_size`.
    pub resolution: u32,
    /// Path-shrinking mode (`PathShrink`).
    pub path_shrink: PathShrink,
    /// Whether empty partitions are kept (`NodeShrink`).
    pub node_shrink: NodeShrink,
    /// When true a leaf overflow splits the node exactly once per insert,
    /// leaving children temporarily overfull — the PMR-quadtree splitting
    /// rule.
    pub split_once: bool,
    /// Node→page clustering policy used by the storage mapping.
    pub clustering: ClusteringPolicy,
}

impl Default for SpGistConfig {
    fn default() -> Self {
        SpGistConfig {
            partitions: 2,
            bucket_size: 8,
            resolution: 64,
            path_shrink: PathShrink::NeverShrink,
            node_shrink: NodeShrink::OmitEmpty,
            split_once: false,
            clustering: ClusteringPolicy::ParentFirst,
        }
    }
}

impl SpGistConfig {
    /// Returns a copy with a different clustering policy (ablation helper).
    pub fn with_clustering(mut self, policy: ClusteringPolicy) -> Self {
        self.clustering = policy;
        self
    }

    /// Returns a copy with a different bucket size.
    pub fn with_bucket_size(mut self, bucket_size: usize) -> Self {
        self.bucket_size = bucket_size.max(1);
        self
    }
}

impl Codec for PathShrink {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PathShrink::NeverShrink => 0,
            PathShrink::LeafShrink => 1,
            PathShrink::TreeShrink => 2,
        });
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(PathShrink::NeverShrink),
            1 => Ok(PathShrink::LeafShrink),
            2 => Ok(PathShrink::TreeShrink),
            tag => Err(StorageError::Decode(format!(
                "invalid PathShrink tag {tag}"
            ))),
        }
    }
}

impl Codec for NodeShrink {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            NodeShrink::KeepEmpty => 0,
            NodeShrink::OmitEmpty => 1,
        });
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(NodeShrink::KeepEmpty),
            1 => Ok(NodeShrink::OmitEmpty),
            tag => Err(StorageError::Decode(format!(
                "invalid NodeShrink tag {tag}"
            ))),
        }
    }
}

impl Codec for ClusteringPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ClusteringPolicy::ParentFirst => 0,
            ClusteringPolicy::FirstFit => 1,
            ClusteringPolicy::NewPagePerNode => 2,
        });
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(ClusteringPolicy::ParentFirst),
            1 => Ok(ClusteringPolicy::FirstFit),
            2 => Ok(ClusteringPolicy::NewPagePerNode),
            tag => Err(StorageError::Decode(format!(
                "invalid ClusteringPolicy tag {tag}"
            ))),
        }
    }
}

/// The durable catalog persists every index's interface parameters so a
/// reopened index runs with exactly the configuration it was created with.
impl Codec for SpGistConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.partitions.encode(out);
        (self.bucket_size as u64).encode(out);
        self.resolution.encode(out);
        self.path_shrink.encode(out);
        self.node_shrink.encode(out);
        self.split_once.encode(out);
        self.clustering.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(SpGistConfig {
            partitions: u32::decode(buf)?,
            bucket_size: u64::decode(buf)? as usize,
            resolution: u32::decode(buf)?,
            path_shrink: PathShrink::decode(buf)?,
            node_shrink: NodeShrink::decode(buf)?,
            split_once: bool::decode(buf)?,
            clustering: ClusteringPolicy::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = SpGistConfig::default();
        assert!(cfg.bucket_size >= 1);
        assert!(cfg.resolution > 0);
        assert_eq!(cfg.clustering, ClusteringPolicy::ParentFirst);
    }

    #[test]
    fn config_codec_roundtrips() {
        let cfg = SpGistConfig {
            partitions: 27,
            bucket_size: 16,
            resolution: 128,
            path_shrink: PathShrink::TreeShrink,
            node_shrink: NodeShrink::OmitEmpty,
            split_once: true,
            clustering: ClusteringPolicy::FirstFit,
        };
        assert_eq!(SpGistConfig::from_bytes(&cfg.to_bytes()).unwrap(), cfg);
        // A bad enum tag is a decode error, not a panic.
        let mut bytes = cfg.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert!(SpGistConfig::from_bytes(&bytes).is_err());
    }

    #[test]
    fn builders_override_fields() {
        let cfg = SpGistConfig::default()
            .with_clustering(ClusteringPolicy::NewPagePerNode)
            .with_bucket_size(0);
        assert_eq!(cfg.clustering, ClusteringPolicy::NewPagePerNode);
        assert_eq!(cfg.bucket_size, 1, "bucket size is clamped to at least 1");
    }
}
