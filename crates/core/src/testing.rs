//! A miniature SP-GiST instantiation used by this crate's unit tests and doc
//! examples.
//!
//! [`DigitTrieOps`] indexes `u32` keys by the decimal digits of their value —
//! a dictionary trie over the alphabet `0..=9` with an explicit end-of-key
//! partition, `NodeShrink = OmitEmpty`, and a small bucket size so that
//! splits are exercised by tiny datasets.  It is intentionally simple; the
//! production-grade instantiations live in the `spgist-indexes` crate.

use crate::config::{NodeShrink, PathShrink, SpGistConfig};
use crate::ops::{Choose, PickSplit, SpGistOps};

/// Partition predicate of the digit trie: a decimal digit, or
/// [`DIGIT_END`] marking "the key ends at this level".
pub const DIGIT_END: u8 = 10;

/// SP-GiST external methods for a dictionary trie over the decimal digits of
/// `u32` keys.
#[derive(Debug, Clone)]
pub struct DigitTrieOps {
    config: SpGistConfig,
}

impl Default for DigitTrieOps {
    fn default() -> Self {
        DigitTrieOps {
            config: SpGistConfig {
                partitions: 11,
                bucket_size: 4,
                resolution: 12,
                path_shrink: PathShrink::NeverShrink,
                node_shrink: NodeShrink::OmitEmpty,
                split_once: false,
                ..SpGistConfig::default()
            },
        }
    }
}

impl DigitTrieOps {
    /// Creates the ops with a custom configuration (used by clustering
    /// ablation tests).
    pub fn with_config(config: SpGistConfig) -> Self {
        DigitTrieOps { config }
    }

    fn digits(key: u32) -> Vec<u8> {
        key.to_string().bytes().map(|b| b - b'0').collect()
    }

    fn digit_at(key: u32, level: u32) -> u8 {
        let digits = Self::digits(key);
        digits.get(level as usize).copied().unwrap_or(DIGIT_END)
    }
}

impl SpGistOps for DigitTrieOps {
    type Key = u32;
    type Prefix = u32;
    type Pred = u8;
    type Query = u32;
    type Context = ();

    fn config(&self) -> SpGistConfig {
        self.config
    }

    fn key_query(&self, key: &u32) -> u32 {
        *key
    }

    fn consistent(&self, _prefix: Option<&u32>, pred: &u8, query: &u32, level: u32) -> bool {
        *pred == Self::digit_at(*query, level)
    }

    fn leaf_consistent(&self, key: &u32, query: &u32, _level: u32) -> bool {
        key == query
    }

    fn choose(
        &self,
        _prefix: Option<&u32>,
        preds: &[u8],
        key: &u32,
        level: u32,
    ) -> Choose<u8, u32> {
        let digit = Self::digit_at(*key, level);
        match preds.iter().position(|p| *p == digit) {
            Some(idx) => Choose::Descend(vec![idx]),
            None => Choose::AddEntry(digit),
        }
    }

    fn picksplit(&self, items: &[u32], level: u32, _ctx: &()) -> PickSplit<u32, u8> {
        let mut partitions: Vec<(u8, Vec<usize>)> = Vec::new();
        for (idx, key) in items.iter().enumerate() {
            let digit = Self::digit_at(*key, level);
            match partitions.iter_mut().find(|(p, _)| *p == digit) {
                Some((_, list)) => list.push(idx),
                None => partitions.push((digit, vec![idx])),
            }
        }
        PickSplit {
            prefix: None,
            partitions,
        }
    }

    fn leaf_distance(&self, key: &u32, query: &u32) -> f64 {
        (f64::from(*key) - f64::from(*query)).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_extraction() {
        assert_eq!(DigitTrieOps::digit_at(123, 0), 1);
        assert_eq!(DigitTrieOps::digit_at(123, 1), 2);
        assert_eq!(DigitTrieOps::digit_at(123, 2), 3);
        assert_eq!(DigitTrieOps::digit_at(123, 3), DIGIT_END);
    }

    #[test]
    fn picksplit_groups_by_digit() {
        let ops = DigitTrieOps::default();
        let split = ops.picksplit(&[10, 11, 20, 2], 0, &());
        assert_eq!(split.partitions.len(), 2);
        let ones = split.partitions.iter().find(|(p, _)| *p == 1).unwrap();
        assert_eq!(ones.1, vec![0, 1]);
        let twos = split.partitions.iter().find(|(p, _)| *p == 2).unwrap();
        assert_eq!(twos.1, vec![2, 3]);
    }

    #[test]
    fn choose_adds_missing_partitions() {
        let ops = DigitTrieOps::default();
        assert_eq!(ops.choose(None, &[1, 2], &305, 0), Choose::AddEntry(3));
        assert_eq!(ops.choose(None, &[1, 3], &305, 0), Choose::Descend(vec![1]));
    }
}
