//! On-disk representation of SP-GiST tree nodes.
//!
//! A space-partitioning tree consists of **inner (index) nodes** — a node
//! predicate (prefix) plus a set of entries, each carrying a partition
//! predicate and a child pointer — and **leaf (data) nodes** holding up to
//! `BucketSize` `(key, row id)` items.  Tree nodes are much smaller than disk
//! pages, so many nodes share one page; a node is addressed by a
//! [`NodeId`] = (page, slot).

use spgist_storage::{Codec, RecordId, StorageError, StorageResult};

use crate::ops::SpGistOps;
use crate::RowId;

/// Address of a tree node: the page it lives in and its slot within the page.
pub type NodeId = RecordId;

/// One entry of an inner node: a partition predicate and the child it points
/// to.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<P> {
    /// Partition predicate (*NodePredicate*).
    pub pred: P,
    /// Child node address.
    pub child: NodeId,
}

/// A tree node, either an inner (index) node or a leaf (data) node.
pub enum Node<O: SpGistOps> {
    /// Index node: optional multi-level prefix and partition entries.
    Inner {
        /// Node-level predicate (`PathShrink = TreeShrink` prefix).
        prefix: Option<O::Prefix>,
        /// Partition entries.
        entries: Vec<Entry<O::Pred>>,
    },
    /// Data node: stored keys and their row ids.
    Leaf {
        /// Data items.
        items: Vec<(O::Key, RowId)>,
    },
}

// Manual trait implementations: deriving would put bounds on `O` itself,
// whereas only the associated types (which the `SpGistOps` trait already
// constrains to `Clone + Debug`) appear in the fields.
impl<O: SpGistOps> Clone for Node<O> {
    fn clone(&self) -> Self {
        match self {
            Node::Inner { prefix, entries } => Node::Inner {
                prefix: prefix.clone(),
                entries: entries.clone(),
            },
            Node::Leaf { items } => Node::Leaf {
                items: items.clone(),
            },
        }
    }
}

impl<O: SpGistOps> std::fmt::Debug for Node<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Inner { prefix, entries } => f
                .debug_struct("Inner")
                .field("prefix", prefix)
                .field("entries", entries)
                .finish(),
            Node::Leaf { items } => f.debug_struct("Leaf").field("items", items).finish(),
        }
    }
}

impl<O: SpGistOps> PartialEq for Node<O>
where
    O::Key: PartialEq,
    O::Prefix: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Node::Inner { prefix, entries },
                Node::Inner {
                    prefix: p2,
                    entries: e2,
                },
            ) => prefix == p2 && entries == e2,
            (Node::Leaf { items }, Node::Leaf { items: i2 }) => items == i2,
            _ => false,
        }
    }
}

const TAG_LEAF: u8 = 0;
const TAG_INNER: u8 = 1;

impl<O: SpGistOps> Node<O> {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf { items: Vec::new() }
    }

    /// True if this is a leaf (data) node.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Serializes the node for storage in a slotted page.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Node::Leaf { items } => {
                out.push(TAG_LEAF);
                (items.len() as u32).encode(&mut out);
                for (key, rid) in items {
                    key.encode(&mut out);
                    rid.encode(&mut out);
                }
            }
            Node::Inner { prefix, entries } => {
                out.push(TAG_INNER);
                prefix.encode(&mut out);
                (entries.len() as u32).encode(&mut out);
                for entry in entries {
                    entry.pred.encode(&mut out);
                    entry.child.encode(&mut out);
                }
            }
        }
        out
    }

    /// Deserializes a node previously produced by [`Node::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Self> {
        let mut buf = bytes;
        let tag = u8::decode(&mut buf)?;
        match tag {
            TAG_LEAF => {
                let len = u32::decode(&mut buf)? as usize;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    let key = O::Key::decode(&mut buf)?;
                    let rid = RowId::decode(&mut buf)?;
                    items.push((key, rid));
                }
                Ok(Node::Leaf { items })
            }
            TAG_INNER => {
                let prefix = Option::<O::Prefix>::decode(&mut buf)?;
                let len = u32::decode(&mut buf)? as usize;
                let mut entries = Vec::with_capacity(len);
                for _ in 0..len {
                    let pred = O::Pred::decode(&mut buf)?;
                    let child = NodeId::decode(&mut buf)?;
                    entries.push(Entry { pred, child });
                }
                Ok(Node::Inner { prefix, entries })
            }
            other => Err(StorageError::Decode(format!("unknown node tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::DigitTrieOps;

    type TestNode = Node<DigitTrieOps>;

    #[test]
    fn leaf_roundtrip() {
        let node: TestNode = Node::Leaf {
            items: vec![(42, 1), (7, 2), (123456, 3)],
        };
        let decoded = TestNode::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
    }

    #[test]
    fn inner_roundtrip() {
        let node: TestNode = Node::Inner {
            prefix: Some(3),
            entries: vec![
                Entry {
                    pred: 1,
                    child: NodeId::new(10, 2),
                },
                Entry {
                    pred: 9,
                    child: NodeId::new(11, 0),
                },
            ],
        };
        let decoded = TestNode::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node: TestNode = Node::empty_leaf();
        assert!(node.is_leaf());
        let decoded = TestNode::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
    }

    #[test]
    fn garbage_tag_is_an_error() {
        assert!(TestNode::decode(&[9, 0, 0, 0, 0]).is_err());
        assert!(TestNode::decode(&[]).is_err());
    }
}
