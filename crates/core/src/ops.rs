//! External methods of the SP-GiST framework.
//!
//! Implementing [`SpGistOps`] is all a developer provides to instantiate a new
//! space-partitioning index (paper Table 1): the `consistent` predicate that
//! guides navigation, `picksplit` that decomposes an overfull data node,
//! `choose` that routes an insertion, and the `NN_Consistent` distance
//! functions for incremental nearest-neighbour search (Section 5).

use spgist_storage::Codec;

use crate::config::SpGistConfig;
use crate::RowId;

/// Decision returned by [`SpGistOps::choose`] when routing an insertion
/// through an inner node.
#[derive(Debug, Clone, PartialEq)]
pub enum Choose<Pred, Prefix> {
    /// Descend into the existing entries at these indices.  Point-like keys
    /// descend into exactly one entry; spatial objects that span several
    /// partitions (PMR-quadtree line segments) descend into all partitions
    /// they intersect.
    Descend(Vec<usize>),
    /// No matching entry exists (`NodeShrink = OmitEmpty`): add a new child
    /// under this predicate and insert the key there.
    AddEntry(Pred),
    /// The key conflicts with the node's multi-level prefix
    /// (`PathShrink = TreeShrink`): the node must first be split so that only
    /// the agreeing part of the prefix remains above.
    SplitPrefix {
        /// Prefix kept by the new upper node (`None` if nothing is shared).
        upper_prefix: Option<Prefix>,
        /// Entry predicate under which the existing node is re-attached.
        lower_pred: Pred,
        /// Prefix kept by the existing (now lower) node.
        lower_prefix: Option<Prefix>,
    },
}

/// Result of [`SpGistOps::picksplit`]: how an overfull data node is
/// decomposed into new partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct PickSplit<Prefix, Pred> {
    /// Prefix predicate of the new inner node (e.g. the common string prefix
    /// for a patricia trie, the splitting point for a kd-tree).
    pub prefix: Option<Prefix>,
    /// The new partitions: an entry predicate and the indices (into the item
    /// slice passed to `picksplit`) of the items routed to that partition.
    /// An index may appear in more than one partition for spatial objects.
    pub partitions: Vec<(Pred, Vec<usize>)>,
}

impl<Prefix, Pred> PickSplit<Prefix, Pred> {
    /// True if the split made no progress: everything would end up in a
    /// single partition identical to the input and no prefix was extracted.
    /// The internal methods stop splitting in that case and allow an
    /// oversized leaf instead.
    pub fn is_degenerate(&self, input_len: usize) -> bool {
        self.prefix.is_none()
            && self.partitions.len() <= 1
            && self
                .partitions
                .first()
                .is_none_or(|(_, items)| items.len() >= input_len)
    }

    /// Parks every item index of `0..input_len` that appears in *no*
    /// partition into the first partition, mirroring the
    /// [`Choose::Descend`]`(vec![0])` insertion fallback (a PMR segment
    /// outside the world rectangle intersects no quadrant).  Both the
    /// insert path's split and the bulk builder call this so a
    /// decomposition can never drop items.
    pub fn park_unassigned(&mut self, input_len: usize) {
        let mut assigned = vec![false; input_len];
        for (_, members) in &self.partitions {
            for &idx in members {
                if let Some(slot) = assigned.get_mut(idx) {
                    *slot = true;
                }
            }
        }
        let unassigned: Vec<usize> = (0..input_len).filter(|&i| !assigned[i]).collect();
        if !unassigned.is_empty() {
            if let Some((_, first)) = self.partitions.first_mut() {
                first.extend(unassigned);
            }
        }
    }

    /// True if the split *replicated* the whole input without separating it:
    /// two or more partitions each received every item.  Recursing into such
    /// a split multiplies identical copies level after level (identical or
    /// heavily overlapping PMR segments) without ever shrinking a partition,
    /// so the bulk builder stops and allows an oversized leaf instead.  A
    /// *single* full partition is fine — that is a plain descent chain,
    /// bounded by the resolution.
    pub fn replicates_without_separating(&self, input_len: usize) -> bool {
        self.partitions
            .iter()
            .filter(|(_, members)| members.len() >= input_len.max(1))
            .count()
            >= 2
    }
}

/// The external methods and interface parameters of one SP-GiST
/// instantiation.
///
/// The associated types mirror the paper's interface parameters:
/// `Key` is *KeyType*, `Pred` is *NodePredicate*, `Prefix` is the node-level
/// predicate used by `PathShrink = TreeShrink` trees, and `Query` is the
/// predicate of the operators registered for the index (equality, prefix,
/// regular expression, range, …).
pub trait SpGistOps {
    /// Data type stored at the leaf nodes (*KeyType*).
    type Key: Codec + Clone + std::fmt::Debug;
    /// Node-level (multi-level) predicate used by tree-shrinking trees; use
    /// `()` for trees that never carry a prefix.
    type Prefix: Codec + Clone + std::fmt::Debug;
    /// Predicate type at index-node entries (*NodePredicate*).
    type Pred: Codec + Clone + PartialEq + std::fmt::Debug;
    /// Query predicate evaluated by `consistent` / `leaf_consistent`.
    type Query: Clone;
    /// Traversal context reconstructed along the root-to-leaf path during
    /// insertion (PostgreSQL SP-GiST's *traversal value*).  Space-driven
    /// trees (the PMR quadtree) use it to carry the region covered by the
    /// current node, which `picksplit` needs to produce the child quadrants.
    /// Instantiations that do not need it use `()`.
    type Context: Clone + Default;

    /// The interface parameters of this instantiation (paper Table 1).
    fn config(&self) -> SpGistConfig;

    /// Context associated with the root node.  Defaults to
    /// `Context::default()`; space-driven trees return the world bounds.
    fn root_context(&self) -> Self::Context {
        Self::Context::default()
    }

    /// Context of the child reached through entry `pred` of a node with
    /// `prefix`, given the node's own context.  Defaults to propagating the
    /// parent context unchanged.
    fn child_context(
        &self,
        ctx: &Self::Context,
        prefix: Option<&Self::Prefix>,
        pred: &Self::Pred,
        level: u32,
    ) -> Self::Context {
        let _ = (prefix, pred, level);
        ctx.clone()
    }

    /// The equality query for `key`; the generalized insert uses it to
    /// navigate to the partition that must hold the key.
    fn key_query(&self, key: &Self::Key) -> Self::Query;

    /// May the subtree under entry `pred` of a node with prefix `prefix` at
    /// depth `level` contain keys satisfying `query`?  Invoked by both
    /// `Insert()` and `Search()` to guide tree navigation (paper Section 3.1).
    fn consistent(
        &self,
        prefix: Option<&Self::Prefix>,
        pred: &Self::Pred,
        query: &Self::Query,
        level: u32,
    ) -> bool;

    /// May *any* entry of a node carrying `prefix` at `level` be consistent
    /// with `query`?  Lets tree-shrinking instantiations prune a whole node
    /// when the query conflicts with the node prefix.  Defaults to `true`.
    fn prefix_consistent(&self, prefix: &Self::Prefix, query: &Self::Query, level: u32) -> bool {
        let _ = (prefix, query, level);
        true
    }

    /// Does the stored `key` satisfy `query`?
    fn leaf_consistent(&self, key: &Self::Key, query: &Self::Query, level: u32) -> bool;

    /// Number of decomposition levels consumed when descending from a node
    /// with `prefix` into one of its children.  `1` for plain trees; tries
    /// with `TreeShrink` add the prefix length.
    fn descend_levels(&self, prefix: Option<&Self::Prefix>) -> u32 {
        let _ = prefix;
        1
    }

    /// Route the insertion of `key` through an inner node.
    fn choose(
        &self,
        prefix: Option<&Self::Prefix>,
        preds: &[Self::Pred],
        key: &Self::Key,
        level: u32,
    ) -> Choose<Self::Pred, Self::Prefix>;

    /// Decompose the items of an overfull data node into new partitions
    /// (paper Table 1).  `level` is the depth of the node being split and
    /// `ctx` the traversal context reconstructed on the way down to it.
    fn picksplit(
        &self,
        items: &[Self::Key],
        level: u32,
        ctx: &Self::Context,
    ) -> PickSplit<Self::Prefix, Self::Pred>;

    /// Bulk-build hint (`spgistbuild`, paper Section 4): rearrange a whole
    /// partition's items before the bulk builder decomposes it with
    /// [`SpGistOps::picksplit`].
    ///
    /// The builder calls this once per partition it is about to split, with
    /// the partition's decomposition `level` and traversal context.  Classes
    /// whose `picksplit` is data-driven use it to choose *which* data drives
    /// the split: the trie sorts the key set (level 0 only — partitions of a
    /// sorted set stay sorted) so sibling runs are contiguous, and the
    /// kd-tree / point quadtree move a spatial median to the front so the
    /// "old point" `picksplit` splits on halves the partition instead of
    /// reflecting insertion order.  Space-driven classes (the PMR quadtree),
    /// whose partitions ignore item order, keep the default no-op.
    fn bulk_prepare(&self, items: &mut [(Self::Key, RowId)], level: u32, ctx: &Self::Context) {
        let _ = (items, level, ctx);
    }

    /// Lower bound on the distance from `query` to any key stored below the
    /// entry `pred` of a node with `prefix`, given the lower bound
    /// `parent_dist` already established for the node itself
    /// (`NN_Consistent`, paper Section 5).  Defaults to propagating the
    /// parent distance, which is always admissible.
    fn inner_distance(
        &self,
        prefix: Option<&Self::Prefix>,
        pred: &Self::Pred,
        query: &Self::Query,
        parent_dist: f64,
        level: u32,
    ) -> f64 {
        let _ = (prefix, pred, query, level);
        parent_dist
    }

    /// Exact distance from `query` to a stored key (`NN_Consistent` on
    /// database objects).
    fn leaf_distance(&self, key: &Self::Key, query: &Self::Query) -> f64 {
        let _ = (key, query);
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_picksplit_detection() {
        let no_progress: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0, 1, 2])],
        };
        assert!(no_progress.is_degenerate(3));

        let with_prefix: PickSplit<String, u8> = PickSplit {
            prefix: Some("ab".to_string()),
            partitions: vec![(b'a', vec![0, 1, 2])],
        };
        assert!(
            !with_prefix.is_degenerate(3),
            "consuming a prefix is progress"
        );

        let real_split: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0]), (b'b', vec![1, 2])],
        };
        assert!(!real_split.is_degenerate(3));

        let empty: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![],
        };
        assert!(empty.is_degenerate(0));
    }

    #[test]
    fn park_unassigned_routes_strays_to_the_first_partition() {
        let mut split: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0]), (b'b', vec![2])],
        };
        split.park_unassigned(4);
        assert_eq!(split.partitions[0].1, vec![0, 1, 3]);
        assert_eq!(split.partitions[1].1, vec![2]);
        // Fully-assigned splits are untouched.
        let mut full: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0, 1])],
        };
        full.park_unassigned(2);
        assert_eq!(full.partitions[0].1, vec![0, 1]);
    }

    #[test]
    fn replication_without_separation_detection() {
        // Two partitions each holding every item: no separation happened.
        let stuck: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0, 1, 2]), (b'b', vec![0, 1, 2]), (b'c', vec![])],
        };
        assert!(stuck.replicates_without_separating(3));
        // One full partition is a plain descent chain, not replication.
        let chain: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0, 1, 2]), (b'b', vec![]), (b'c', vec![])],
        };
        assert!(!chain.replicates_without_separating(3));
        // Replication with shrink (items split across partitions) is fine.
        let progress: PickSplit<String, u8> = PickSplit {
            prefix: None,
            partitions: vec![(b'a', vec![0, 1]), (b'b', vec![1, 2])],
        };
        assert!(!progress.replicates_without_separating(3));
    }
}
