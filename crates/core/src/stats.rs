//! Tree statistics: node height, page height, size and utilization.
//!
//! The paper's Figures 10–12 and 14 compare index *size*, maximum tree height
//! in *nodes*, and maximum tree height in *pages* — the latter is the number
//! of distinct pages touched along a root-to-leaf path and is the quantity
//! the node→page clustering minimizes.

/// Statistics gathered by a full traversal of an SP-GiST tree.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TreeStats {
    /// Number of inner (index) nodes.
    pub inner_nodes: u64,
    /// Number of leaf (data) nodes.
    pub leaf_nodes: u64,
    /// Number of stored data items.
    pub items: u64,
    /// Maximum root-to-leaf height counted in tree nodes.
    pub max_node_height: u32,
    /// Maximum root-to-leaf height counted in distinct disk pages
    /// (paper Figure 12).
    pub max_page_height: u32,
    /// Number of disk pages allocated to the tree.
    pub pages: u64,
    /// Total on-disk size in bytes (`pages * PAGE_SIZE`).
    pub size_bytes: u64,
    /// Fraction of allocated page bytes actually holding node data.
    pub utilization: f64,
}

impl TreeStats {
    /// Total number of tree nodes.
    pub fn total_nodes(&self) -> u64 {
        self.inner_nodes + self.leaf_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_nodes_sums_both_kinds() {
        let stats = TreeStats {
            inner_nodes: 3,
            leaf_nodes: 9,
            ..TreeStats::default()
        };
        assert_eq!(stats.total_nodes(), 12);
    }
}
