//! Node→page storage mapping with clustering.
//!
//! Space-partitioning tree nodes are much smaller than disk pages, so the
//! crucial disk-based design question — raised explicitly in the paper's
//! Section 3 — is how to pack tree nodes into pages so that root-to-leaf
//! traversals touch as few pages as possible.  The paper relies on the
//! clustering technique of Diwan et al.; [`NodeStore`] implements a greedy
//! approximation controlled by [`ClusteringPolicy`]:
//!
//! * `ParentFirst` (default) places a new node in its parent's page when it
//!   fits, falling back to a small set of recently opened pages, and only then
//!   to a fresh page.  Subtrees stay physically clustered and the *page*
//!   height of the tree stays close to that of a balanced B⁺-tree even though
//!   the *node* height is much larger (paper Figures 11–12).
//! * `FirstFit` ignores the parent and packs nodes into any tracked page with
//!   room.
//! * `NewPagePerNode` allocates one page per node — the naive mapping, used by
//!   the clustering ablation benchmark.

use std::sync::Arc;

use spgist_storage::{BufferPool, PageId, StorageResult, PAGE_SIZE};

use crate::config::ClusteringPolicy;
use crate::node::{Node, NodeId};
use crate::ops::SpGistOps;

/// Number of partially filled pages the store keeps as candidates for new
/// node placement.
const OPEN_PAGE_LIMIT: usize = 16;

/// Maps tree nodes onto slotted pages obtained from a [`BufferPool`].
pub struct NodeStore {
    pool: Arc<BufferPool>,
    policy: ClusteringPolicy,
    /// Pages owned by this tree, in allocation order.
    pages: Vec<PageId>,
    /// Recently opened pages that may still have free space.
    open_pages: Vec<PageId>,
}

impl NodeStore {
    /// Creates a store over `pool` with the given clustering policy.
    pub fn new(pool: Arc<BufferPool>, policy: ClusteringPolicy) -> Self {
        NodeStore {
            pool,
            policy,
            pages: Vec::new(),
            open_pages: Vec::new(),
        }
    }

    /// The buffer pool this store writes through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of pages allocated for this tree.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Approximate on-disk size of the tree in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    /// Pages owned by this tree (for stats and utilization reports).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Average page utilization in `[0, 1]` (fraction of page bytes holding
    /// record data).
    pub fn utilization(&self) -> StorageResult<f64> {
        if self.pages.is_empty() {
            return Ok(0.0);
        }
        let mut used = 0usize;
        for &page in &self.pages {
            let free = self.pool.with_page(page, |p| p.free_space())?;
            used += PAGE_SIZE - free;
        }
        Ok(used as f64 / (self.pages.len() * PAGE_SIZE) as f64)
    }

    /// Reads and decodes the node at `id`.
    pub fn read<O: SpGistOps>(&self, id: NodeId) -> StorageResult<Node<O>> {
        self.pool
            .with_page(id.page, |p| p.get(id.slot).map(Node::<O>::decode))??
    }

    /// Places a brand-new node, preferring the page `near` according to the
    /// clustering policy.  Returns the node's address.
    pub fn allocate<O: SpGistOps>(
        &mut self,
        node: &Node<O>,
        near: Option<PageId>,
    ) -> StorageResult<NodeId> {
        let bytes = node.encode();
        self.place(&bytes, near)
    }

    /// Rewrites the node at `id` in place when possible.  If the new encoding
    /// no longer fits in its page the node is relocated (preferring `near`)
    /// and the new address is returned; the caller must then fix the parent's
    /// child pointer.  Returns `None` when the update happened in place.
    pub fn update<O: SpGistOps>(
        &mut self,
        id: NodeId,
        node: &Node<O>,
        near: Option<PageId>,
    ) -> StorageResult<Option<NodeId>> {
        let bytes = node.encode();
        let updated = self
            .pool
            .with_page_mut(id.page, |p| p.update(id.slot, &bytes))??;
        if updated {
            return Ok(None);
        }
        // Relocate: delete the old record and place the node elsewhere.
        self.pool
            .with_page_mut(id.page, |p| p.delete(id.slot))??;
        self.note_open_page(id.page);
        let new_id = self.place(&bytes, near)?;
        Ok(Some(new_id))
    }

    /// Deletes the node record at `id`.
    pub fn free(&mut self, id: NodeId) -> StorageResult<()> {
        self.pool
            .with_page_mut(id.page, |p| p.delete(id.slot))??;
        self.note_open_page(id.page);
        Ok(())
    }

    fn place(&mut self, bytes: &[u8], near: Option<PageId>) -> StorageResult<NodeId> {
        match self.policy {
            ClusteringPolicy::NewPagePerNode => self.place_in_new_page(bytes),
            ClusteringPolicy::ParentFirst => {
                if let Some(parent_page) = near {
                    if let Some(id) = self.try_place_in(parent_page, bytes)? {
                        return Ok(id);
                    }
                }
                self.place_in_open_or_new(bytes)
            }
            ClusteringPolicy::FirstFit => self.place_in_open_or_new(bytes),
        }
    }

    fn place_in_open_or_new(&mut self, bytes: &[u8]) -> StorageResult<NodeId> {
        // Scan the open-page list most-recent-first.
        for i in (0..self.open_pages.len()).rev() {
            let page = self.open_pages[i];
            if let Some(id) = self.try_place_in(page, bytes)? {
                return Ok(id);
            }
            // The page could not host this node; drop it from the candidates
            // if it is nearly full to keep the list useful.
            let free = self.pool.with_page(page, |p| p.free_space())?;
            if free < 64 {
                self.open_pages.remove(i);
            }
        }
        self.place_in_new_page(bytes)
    }

    /// Allocates a brand-new page owned by this store and returns its id.
    /// Used by the offline repacker, which decides node placement itself.
    pub fn fresh_page(&mut self) -> StorageResult<PageId> {
        let page = self.pool.allocate_page()?;
        self.pages.push(page);
        Ok(page)
    }

    /// Places `node` in the given page; the caller guarantees it fits.
    pub fn allocate_in_page<O: SpGistOps>(
        &mut self,
        node: &Node<O>,
        page: PageId,
    ) -> StorageResult<NodeId> {
        let bytes = node.encode();
        let slot = self.pool.with_page_mut(page, |p| p.insert(&bytes))??;
        Ok(NodeId::new(page, slot))
    }

    fn place_in_new_page(&mut self, bytes: &[u8]) -> StorageResult<NodeId> {
        let page = self.pool.allocate_page()?;
        self.pages.push(page);
        if self.policy != ClusteringPolicy::NewPagePerNode {
            self.note_open_page(page);
        }
        let slot = self.pool.with_page_mut(page, |p| p.insert(bytes))??;
        Ok(NodeId::new(page, slot))
    }

    fn try_place_in(&self, page: PageId, bytes: &[u8]) -> StorageResult<Option<NodeId>> {
        let fits = self.pool.with_page(page, |p| p.fits(bytes.len()))?;
        if !fits {
            return Ok(None);
        }
        let slot = self.pool.with_page_mut(page, |p| p.insert(bytes))??;
        Ok(Some(NodeId::new(page, slot)))
    }

    fn note_open_page(&mut self, page: PageId) {
        if let Some(pos) = self.open_pages.iter().position(|&p| p == page) {
            self.open_pages.remove(pos);
        }
        self.open_pages.push(page);
        if self.open_pages.len() > OPEN_PAGE_LIMIT {
            self.open_pages.remove(0);
        }
    }
}

impl std::fmt::Debug for NodeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStore")
            .field("policy", &self.policy)
            .field("pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;
    use crate::testing::DigitTrieOps;
    use spgist_storage::BufferPool;

    type TestNode = Node<DigitTrieOps>;

    fn store(policy: ClusteringPolicy) -> NodeStore {
        NodeStore::new(BufferPool::in_memory(), policy)
    }

    fn leaf(n: u32) -> TestNode {
        Node::Leaf {
            items: (0..n).map(|i| (i, u64::from(i))).collect(),
        }
    }

    #[test]
    fn allocate_and_read_roundtrip() {
        let mut store = store(ClusteringPolicy::ParentFirst);
        let node = leaf(5);
        let id = store.allocate(&node, None).unwrap();
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, node);
    }

    #[test]
    fn parent_first_packs_children_with_parent() {
        let mut store = store(ClusteringPolicy::ParentFirst);
        let parent_id = store.allocate(&leaf(1), None).unwrap();
        let mut same_page = 0;
        for _ in 0..10 {
            let child_id = store.allocate(&leaf(2), Some(parent_id.page)).unwrap();
            if child_id.page == parent_id.page {
                same_page += 1;
            }
        }
        assert_eq!(same_page, 10, "small children should share the parent's page");
        assert_eq!(store.page_count(), 1);
    }

    #[test]
    fn new_page_per_node_never_shares() {
        let mut store = store(ClusteringPolicy::NewPagePerNode);
        let a = store.allocate(&leaf(1), None).unwrap();
        let b = store.allocate(&leaf(1), Some(a.page)).unwrap();
        assert_ne!(a.page, b.page);
        assert_eq!(store.page_count(), 2);
    }

    #[test]
    fn update_in_place_when_it_fits() {
        let mut store = store(ClusteringPolicy::ParentFirst);
        let id = store.allocate(&leaf(4), None).unwrap();
        let relocated = store.update(id, &leaf(3), None).unwrap();
        assert!(relocated.is_none());
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, leaf(3));
    }

    #[test]
    fn update_relocates_when_page_is_full() {
        let mut store = store(ClusteringPolicy::ParentFirst);
        let id = store.allocate(&leaf(1), None).unwrap();
        // Fill the rest of the page with other nodes.
        loop {
            let filler = leaf(100);
            let bytes_len = filler.encode().len();
            let fits = store
                .pool()
                .with_page(id.page, |p| p.fits(bytes_len))
                .unwrap();
            if !fits {
                break;
            }
            store.allocate(&filler, Some(id.page)).unwrap();
        }
        // Growing the first node must relocate it.
        let big = leaf(200);
        let new_id = store.update(id, &big, None).unwrap();
        let new_id = new_id.expect("node must relocate out of the full page");
        assert_ne!(new_id, id);
        let read: TestNode = store.read(new_id).unwrap();
        assert_eq!(read, big);
    }

    #[test]
    fn free_reclaims_space_for_future_nodes() {
        let mut store = store(ClusteringPolicy::FirstFit);
        let id = store.allocate(&leaf(50), None).unwrap();
        store.free(id).unwrap();
        assert!(store.read::<DigitTrieOps>(id).is_err());
    }

    #[test]
    fn utilization_reflects_packing() {
        let mut store = store(ClusteringPolicy::ParentFirst);
        assert_eq!(store.utilization().unwrap(), 0.0);
        for _ in 0..200 {
            store.allocate(&leaf(8), None).unwrap();
        }
        let packed = store.utilization().unwrap();

        let sparse = store_with_policy_and_nodes(ClusteringPolicy::NewPagePerNode, 200);
        let sparse_util = sparse.utilization().unwrap();
        assert!(
            packed > sparse_util * 10.0,
            "clustered packing ({packed:.3}) should be far denser than one node per page ({sparse_util:.3})"
        );
    }

    fn store_with_policy_and_nodes(policy: ClusteringPolicy, n: usize) -> NodeStore {
        let mut store = store(policy);
        for _ in 0..n {
            store.allocate(&leaf(8), None).unwrap();
        }
        store
    }

    #[test]
    fn inner_nodes_roundtrip_through_store() {
        let mut store = store(ClusteringPolicy::ParentFirst);
        let child = store.allocate(&leaf(1), None).unwrap();
        let inner: TestNode = Node::Inner {
            prefix: None,
            entries: vec![Entry { pred: 7, child }],
        };
        let id = store.allocate(&inner, None).unwrap();
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, inner);
    }
}
