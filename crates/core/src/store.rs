//! Node→page storage mapping with clustering.
//!
//! Space-partitioning tree nodes are much smaller than disk pages, so the
//! crucial disk-based design question — raised explicitly in the paper's
//! Section 3 — is how to pack tree nodes into pages so that root-to-leaf
//! traversals touch as few pages as possible.  The paper relies on the
//! clustering technique of Diwan et al.; [`NodeStore`] implements a greedy
//! approximation controlled by [`ClusteringPolicy`]:
//!
//! * `ParentFirst` (default) places a new node in its parent's page when it
//!   fits, falling back to a small set of recently opened pages, and only then
//!   to a fresh page.  Subtrees stay physically clustered and the *page*
//!   height of the tree stays close to that of a balanced B⁺-tree even though
//!   the *node* height is much larger (paper Figures 11–12).
//! * `FirstFit` ignores the parent and packs nodes into any tracked page with
//!   room.
//! * `NewPagePerNode` allocates one page per node — the naive mapping, used by
//!   the clustering ablation benchmark.
//!
//! # Concurrency
//!
//! The store is shared (`&self` everywhere) so one tree can serve parallel
//! writers and latch-free snapshot readers:
//!
//! * Placement state (the owned-page list and open-page candidates) sits
//!   behind a mutex; page content itself is protected by the buffer pool's
//!   per-frame locks.
//! * [`NodeStore::update`] is copy-on-write when a node must relocate: the
//!   old record (and its spill chain) stays intact and readable until the
//!   caller has re-linked the parent and calls [`NodeStore::retire_node`],
//!   which hands the old records to the [`EpochManager`].  Retired records
//!   are physically deleted by [`NodeStore::reclaim`] only once every
//!   reader epoch pinned before the retirement has ended.
//! * Spill-chain continuation records are immutable: a rewrite of a chained
//!   node always places *fresh* continuations and retires the old ones, so
//!   a reader that caught the old head mid-rewrite still reassembles the
//!   complete old node.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spgist_storage::{
    AccessHint, BufferPool, Codec, EpochManager, EpochPin, PageId, RetiredItem, StorageError,
    StorageResult, MAX_RECORD_SIZE, PAGE_SIZE,
};

use crate::config::ClusteringPolicy;
use crate::node::{Node, NodeId};
use crate::ops::SpGistOps;

/// Number of partially filled pages the store keeps as candidates for new
/// node placement.
const OPEN_PAGE_LIMIT: usize = 16;

/// Record-header tags.  Every node record starts with one byte saying how
/// the node's bytes are laid out.
///
/// A node is usually far smaller than a page, but a data node full of
/// duplicate keys (rampant in the suffix tree, where short suffixes repeat
/// across thousands of words) cannot be decomposed by `PickSplit` and may
/// outgrow a page.  Such nodes are spilled transparently across a chain of
/// records — the TOAST idea scaled down to tree nodes — so the internal
/// methods never see a size limit.
const TAG_INLINE: u8 = 0;
const TAG_CHAIN_HEAD: u8 = 1;
const TAG_CHAIN_CONT: u8 = 2;

/// Per-record header overhead: tag byte + continuation pointer
/// (page `u32` + slot `u16`).
const CHAIN_HEADER: usize = 7;

/// Largest node-byte payload a single record can carry.  Slack is reserved
/// below the hard record limit because dead slot-directory entries are never
/// reclaimed: a full-size chunk would stop fitting on a page after a single
/// free/reallocate cycle, defeating space reuse.
const MAX_CHUNK: usize = MAX_RECORD_SIZE - CHAIN_HEADER - 256;

/// Continuation pointer marking the end of a chain.
const CHAIN_END: NodeId = NodeId {
    page: u32::MAX,
    slot: u16::MAX,
};

fn encode_chain_record(tag: u8, next: NodeId, chunk: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHAIN_HEADER + chunk.len());
    tag.encode(&mut out);
    next.page.encode(&mut out);
    next.slot.encode(&mut out);
    out.extend_from_slice(chunk);
    out
}

fn encode_inline_record(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + bytes.len());
    TAG_INLINE.encode(&mut out);
    out.extend_from_slice(bytes);
    out
}

/// Decodes the continuation pointer of a chain record, returning it along
/// with the record's payload chunk.
fn decode_chain_rest(mut buf: &[u8]) -> StorageResult<(NodeId, &[u8])> {
    let page = u32::decode(&mut buf)?;
    let slot = u16::decode(&mut buf)?;
    Ok((NodeId::new(page, slot), buf))
}

/// Placement bookkeeping, shared behind a mutex so allocation decisions
/// serialize briefly while page I/O stays parallel.
struct Placement {
    /// Pages owned by this tree, in allocation order.
    pages: Vec<PageId>,
    /// Recently opened pages that may still have free space.
    open_pages: Vec<PageId>,
}

/// Maps tree nodes onto slotted pages obtained from a [`BufferPool`].
pub struct NodeStore {
    pool: Arc<BufferPool>,
    policy: ClusteringPolicy,
    placement: Mutex<Placement>,
    epochs: Arc<EpochManager>,
    /// Hint passed with every page access, as `AccessHint as u8`.
    /// [`AccessHint::Normal`] for point operations; bulk build and
    /// whole-tree sweeps switch to [`AccessHint::Scan`] so their one-touch
    /// pages do not displace the pool's hot set.
    hint: AtomicU8,
}

impl NodeStore {
    /// Creates a store over `pool` with the given clustering policy.
    pub fn new(pool: Arc<BufferPool>, policy: ClusteringPolicy) -> Self {
        Self::with_pages(pool, policy, Vec::new())
    }

    /// Re-creates a store that already owns `pages` (a tree re-opened from a
    /// durable catalog).  With the ownership list restored, statistics,
    /// repacking and destruction work exactly as for a tree built in this
    /// session; the most recently allocated pages are re-seeded as placement
    /// candidates so inserts keep filling partially-used pages.
    pub fn with_pages(pool: Arc<BufferPool>, policy: ClusteringPolicy, pages: Vec<PageId>) -> Self {
        let open_pages = if policy == ClusteringPolicy::NewPagePerNode {
            Vec::new()
        } else {
            let skip = pages.len().saturating_sub(OPEN_PAGE_LIMIT);
            pages[skip..].to_vec()
        };
        NodeStore {
            pool,
            policy,
            placement: Mutex::new(Placement { pages, open_pages }),
            epochs: Arc::new(EpochManager::new()),
            hint: AtomicU8::new(AccessHint::Normal as u8),
        }
    }

    /// The buffer pool this store writes through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The epoch manager guarding this store's retired records.
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }

    /// Pins the current reclamation epoch for a reader.  While the pin is
    /// live, every node record the reader can reach stays readable even if
    /// concurrent writers retire it.
    pub fn pin(&self) -> EpochPin {
        self.epochs.pin()
    }

    /// The access hint currently attached to this store's page traffic.
    pub fn access_hint(&self) -> AccessHint {
        if self.hint.load(Ordering::Relaxed) == AccessHint::Scan as u8 {
            AccessHint::Scan
        } else {
            AccessHint::Normal
        }
    }

    /// Sets the access hint for subsequent page traffic.  Bulk build wraps
    /// itself in [`AccessHint::Scan`] (every page is written once, front to
    /// back); callers must restore [`AccessHint::Normal`] afterwards.
    pub fn set_access_hint(&self, hint: AccessHint) {
        self.hint.store(hint as u8, Ordering::Relaxed);
    }

    /// Number of pages allocated for this tree.
    pub fn page_count(&self) -> usize {
        self.placement.lock().pages.len()
    }

    /// Approximate on-disk size of the tree in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() as u64 * PAGE_SIZE as u64
    }

    /// Pages owned by this tree (for stats and utilization reports).
    pub fn pages(&self) -> Vec<PageId> {
        self.placement.lock().pages.clone()
    }

    /// Average page utilization in `[0, 1]` (fraction of page bytes holding
    /// record data).
    pub fn utilization(&self) -> StorageResult<f64> {
        let pages = self.pages();
        if pages.is_empty() {
            return Ok(0.0);
        }
        let mut used = 0usize;
        for &page in &pages {
            // Whole-tree sweep: never let a utilization report evict the
            // working set.
            let free = self
                .pool
                .with_page_hinted(page, AccessHint::Scan, |p| p.free_space())?;
            used += PAGE_SIZE - free;
        }
        Ok(used as f64 / (pages.len() * PAGE_SIZE) as f64)
    }

    /// Reads and decodes the node at `id`, reassembling spilled chains
    /// transparently, under the store's current access hint.
    pub fn read<O: SpGistOps>(&self, id: NodeId) -> StorageResult<Node<O>> {
        self.read_hinted(id, self.access_hint())
    }

    /// Reads the node at `id` under an explicit [`AccessHint`] — whole-tree
    /// walks (stats, repack) pass [`AccessHint::Scan`] without flipping the
    /// store-wide hint.
    pub fn read_hinted<O: SpGistOps>(
        &self,
        id: NodeId,
        hint: AccessHint,
    ) -> StorageResult<Node<O>> {
        let record = self
            .pool
            .with_page_hinted(id.page, hint, |p| p.get(id.slot).map(<[u8]>::to_vec))??;
        let mut buf = record.as_slice();
        match u8::decode(&mut buf)? {
            TAG_INLINE => Node::decode(buf),
            TAG_CHAIN_HEAD => {
                let (next, chunk) = decode_chain_rest(buf)?;
                let mut bytes = chunk.to_vec();
                let mut cursor = next;
                while cursor != CHAIN_END {
                    let record = self.pool.with_page_hinted(cursor.page, hint, |p| {
                        p.get(cursor.slot).map(<[u8]>::to_vec)
                    })??;
                    let mut buf = record.as_slice();
                    if u8::decode(&mut buf)? != TAG_CHAIN_CONT {
                        return Err(StorageError::Corrupt(
                            "chain continuation record has the wrong tag".into(),
                        ));
                    }
                    let (next, chunk) = decode_chain_rest(buf)?;
                    bytes.extend_from_slice(chunk);
                    cursor = next;
                }
                Node::decode(&bytes)
            }
            tag => Err(StorageError::Corrupt(format!(
                "node record has unexpected tag {tag}"
            ))),
        }
    }

    /// Places a brand-new node, preferring the page `near` according to the
    /// clustering policy.  Nodes larger than a page spill across a record
    /// chain.  Returns the node's address.
    pub fn allocate<O: SpGistOps>(
        &self,
        node: &Node<O>,
        near: Option<PageId>,
    ) -> StorageResult<NodeId> {
        let bytes = node.encode();
        let record = self.encode_node_record(&bytes)?;
        self.place(&record, near)
    }

    /// Encodes node bytes into the record written at the node's address:
    /// inline when they fit a single record, otherwise a chain head whose
    /// continuation records are placed as a side effect.
    fn encode_node_record(&self, bytes: &[u8]) -> StorageResult<Vec<u8>> {
        if bytes.len() < MAX_RECORD_SIZE {
            return Ok(encode_inline_record(bytes));
        }
        let next = self.place_continuations(bytes)?;
        Ok(encode_chain_record(
            TAG_CHAIN_HEAD,
            next,
            &bytes[..MAX_CHUNK],
        ))
    }

    /// Writes every chunk of `bytes` past the first into continuation
    /// records (tail-first, so each record knows its successor) and returns
    /// the id of the first continuation.
    fn place_continuations(&self, bytes: &[u8]) -> StorageResult<NodeId> {
        let mut next = CHAIN_END;
        let mut chunks: Vec<&[u8]> = bytes[MAX_CHUNK..].chunks(MAX_CHUNK).collect();
        while let Some(chunk) = chunks.pop() {
            let record = encode_chain_record(TAG_CHAIN_CONT, next, chunk);
            next = self.place(&record, None)?;
        }
        Ok(next)
    }

    /// Frees every continuation record from `cursor` to the end of a chain,
    /// immediately and without epoch protection — only for records no
    /// reader can have seen (a failed rewrite's freshly placed chain) or
    /// exclusive contexts ([`NodeStore::free`]).
    fn free_chain_from(&self, mut cursor: NodeId) -> StorageResult<()> {
        while cursor != CHAIN_END {
            let next = self.chain_next(cursor)?;
            self.pool
                .with_page_mut_hinted(cursor.page, self.access_hint(), |p| {
                    p.delete(cursor.slot)
                })??;
            self.note_open_page(cursor.page);
            cursor = next;
        }
        Ok(())
    }

    /// Retires every continuation record from `cursor` to the end of a
    /// chain.  The records stay readable until [`NodeStore::reclaim`]
    /// collects them past the last protecting reader epoch.
    fn retire_chain_from(&self, mut cursor: NodeId) -> StorageResult<()> {
        while cursor != CHAIN_END {
            let next = self.chain_next(cursor)?;
            self.epochs
                .retire(RetiredItem::Slot(cursor.page, cursor.slot));
            cursor = next;
        }
        Ok(())
    }

    /// The continuation pointer stored in the chain record at `cursor`.
    fn chain_next(&self, cursor: NodeId) -> StorageResult<NodeId> {
        let record = self
            .pool
            .with_page_hinted(cursor.page, self.access_hint(), |p| {
                p.get(cursor.slot).map(<[u8]>::to_vec)
            })??;
        let mut buf = record.as_slice();
        u8::decode(&mut buf)?;
        Ok(decode_chain_rest(buf)?.0)
    }

    /// The first continuation record of `id`, or [`CHAIN_END`] for inline
    /// records.
    fn continuation_of(&self, id: NodeId) -> StorageResult<NodeId> {
        let record = self
            .pool
            .with_page_hinted(id.page, self.access_hint(), |p| {
                p.get(id.slot).map(<[u8]>::to_vec)
            })??;
        let mut buf = record.as_slice();
        match u8::decode(&mut buf)? {
            TAG_CHAIN_HEAD => Ok(decode_chain_rest(buf)?.0),
            _ => Ok(CHAIN_END),
        }
    }

    /// Rewrites the node at `id` in place when possible.  If the new encoding
    /// no longer fits in its page the node is relocated copy-on-write
    /// (preferring `near`) and the new address is returned: the *old* record
    /// and its spill chain stay intact for concurrent snapshot readers, and
    /// the caller must fix the parent's child pointer and then call
    /// [`NodeStore::retire_node`] on the old address.  Returns `None` when
    /// the update happened in place (any superseded spill chain is retired
    /// here).
    pub fn update<O: SpGistOps>(
        &self,
        id: NodeId,
        node: &Node<O>,
        near: Option<PageId>,
    ) -> StorageResult<Option<NodeId>> {
        // Any previous spill chain is replaced wholesale by fresh
        // continuation records; the old ones are retired, never mutated, so
        // a reader holding the old head still reassembles the old node.
        let old_chain = self.continuation_of(id)?;
        let bytes = node.encode();
        let record = self.encode_node_record(&bytes)?;
        let updated = self
            .pool
            .with_page_mut_hinted(id.page, self.access_hint(), |p| p.update(id.slot, &record))??;
        if updated {
            self.retire_chain_from(old_chain)?;
            return Ok(None);
        }
        // A node shrinking out of chain format can still miss the in-place
        // window: an inline record is up to CHAIN_HEADER-1 bytes *larger*
        // than the chain head it replaces, and the head's page may have no
        // slack.  Deletion call sites rely on shrinking updates never
        // relocating (they do not know the parent pointer), so retry in
        // chain format — the head record is capped at the old head's size,
        // and `read` handles an immediate CHAIN_END.
        if record.first() == Some(&TAG_INLINE) {
            let head_len = bytes.len().min(MAX_CHUNK);
            let next = if bytes.len() > MAX_CHUNK {
                self.place_continuations(&bytes)?
            } else {
                CHAIN_END
            };
            let chain_head = encode_chain_record(TAG_CHAIN_HEAD, next, &bytes[..head_len]);
            let updated = self
                .pool
                .with_page_mut_hinted(id.page, self.access_hint(), |p| {
                    p.update(id.slot, &chain_head)
                })??;
            if updated {
                self.retire_chain_from(old_chain)?;
                return Ok(None);
            }
            // The retry failed too; its freshly placed continuations were
            // never linked anywhere, so free them outright before
            // relocating the inline record.
            self.free_chain_from(next)?;
        }
        // Relocate copy-on-write: the old record keeps its content (and its
        // chain) until the caller retires it.
        let new_id = self.place(&record, near)?;
        Ok(Some(new_id))
    }

    /// Retires the node record at `id` and its spill chain, handing them to
    /// the epoch manager.  Call after the last pointer to `id` has been
    /// unlinked from the tree; readers pinned before the unlink keep reading
    /// the records until [`NodeStore::reclaim`] passes their epoch.
    pub fn retire_node(&self, id: NodeId) -> StorageResult<()> {
        let chain = self.continuation_of(id)?;
        self.epochs.retire(RetiredItem::Slot(id.page, id.slot));
        self.retire_chain_from(chain)
    }

    /// Retires whole page `page` (used by repack after the root flips to the
    /// rebuilt layout).  The page must already be unreachable from the
    /// current tree and removed from this store's owned-page list.
    pub fn retire_page(&self, page: PageId) {
        self.epochs.retire(RetiredItem::Page(page));
    }

    /// Physically frees every retired item that no live reader epoch can
    /// reference: retired slots are deleted from their pages (and the page
    /// re-enters placement candidates), retired pages go back to the buffer
    /// pool.  Writers call this opportunistically after each operation.
    pub fn reclaim(&self) -> StorageResult<()> {
        for item in self.epochs.take_reclaimable() {
            match item {
                RetiredItem::Slot(page, slot) => {
                    self.pool
                        .with_page_mut_hinted(page, self.access_hint(), |p| p.delete(slot))??;
                    self.note_open_page(page);
                }
                RetiredItem::Page(page) => {
                    let mut placement = self.placement.lock();
                    placement.open_pages.retain(|&p| p != page);
                    drop(placement);
                    self.pool.free_page(page)?;
                }
            }
        }
        Ok(())
    }

    /// Deletes the node record at `id` (and its spill chain, if any)
    /// immediately, without epoch protection.  Only for exclusive contexts
    /// (tests, teardown); concurrent trees use [`NodeStore::retire_node`].
    pub fn free(&self, id: NodeId) -> StorageResult<()> {
        let chain = self.continuation_of(id)?;
        self.pool
            .with_page_mut_hinted(id.page, self.access_hint(), |p| p.delete(id.slot))??;
        self.note_open_page(id.page);
        self.free_chain_from(chain)
    }

    /// Starts a repack: clears the open-page candidates so every placement
    /// from here on goes to freshly allocated pages, and returns the
    /// pre-repack owned-page snapshot for [`NodeStore::finish_repack`].
    pub fn begin_repack(&self) -> Vec<PageId> {
        let mut placement = self.placement.lock();
        placement.open_pages.clear();
        placement.pages.clone()
    }

    /// Finishes a repack: drops `old_pages` from the owned-page list and
    /// retires them.  Readers pinned before the root flipped to the rebuilt
    /// layout keep traversing the old pages until reclamation passes them.
    pub fn finish_repack(&self, old_pages: &[PageId]) {
        {
            let mut placement = self.placement.lock();
            placement.pages.retain(|p| !old_pages.contains(p));
            placement.open_pages.retain(|p| !old_pages.contains(p));
        }
        for &page in old_pages {
            self.retire_page(page);
        }
    }

    fn place(&self, bytes: &[u8], near: Option<PageId>) -> StorageResult<NodeId> {
        match self.policy {
            ClusteringPolicy::NewPagePerNode => self.place_in_new_page(bytes),
            ClusteringPolicy::ParentFirst => {
                if let Some(parent_page) = near {
                    if let Some(id) = self.try_place_in(parent_page, bytes)? {
                        return Ok(id);
                    }
                }
                self.place_in_open_or_new(bytes)
            }
            ClusteringPolicy::FirstFit => self.place_in_open_or_new(bytes),
        }
    }

    fn place_in_open_or_new(&self, bytes: &[u8]) -> StorageResult<NodeId> {
        // Scan the open-page list most-recent-first.  The list is sampled
        // under the placement lock but probed outside it; a stale candidate
        // just fails its fit check.
        let candidates: Vec<PageId> = {
            let placement = self.placement.lock();
            placement.open_pages.iter().rev().copied().collect()
        };
        for page in candidates {
            if let Some(id) = self.try_place_in(page, bytes)? {
                return Ok(id);
            }
            // The page could not host this node; drop it from the candidates
            // if it is nearly full to keep the list useful.
            let free = self
                .pool
                .with_page_hinted(page, self.access_hint(), |p| p.free_space())?;
            if free < 64 {
                self.placement.lock().open_pages.retain(|&p| p != page);
            }
        }
        self.place_in_new_page(bytes)
    }

    /// Allocates a brand-new page owned by this store and returns its id.
    /// Used by the offline repacker, which decides node placement itself.
    pub fn fresh_page(&self) -> StorageResult<PageId> {
        let page = self.pool.allocate_page_hinted(self.access_hint())?;
        self.placement.lock().pages.push(page);
        Ok(page)
    }

    /// Places `node` in the given page; the caller guarantees the page has
    /// room for it (oversized nodes spill their tail into a chain, with only
    /// the head record in `page`).
    pub fn allocate_in_page<O: SpGistOps>(
        &self,
        node: &Node<O>,
        page: PageId,
    ) -> StorageResult<NodeId> {
        let bytes = node.encode();
        let record = self.encode_node_record(&bytes)?;
        let slot = self
            .pool
            .with_page_mut_hinted(page, self.access_hint(), |p| p.insert(&record))??;
        Ok(NodeId::new(page, slot))
    }

    fn place_in_new_page(&self, bytes: &[u8]) -> StorageResult<NodeId> {
        let page = self.pool.allocate_page_hinted(self.access_hint())?;
        self.placement.lock().pages.push(page);
        if self.policy != ClusteringPolicy::NewPagePerNode {
            self.note_open_page(page);
        }
        let slot = self
            .pool
            .with_page_mut_hinted(page, self.access_hint(), |p| p.insert(bytes))??;
        Ok(NodeId::new(page, slot))
    }

    fn try_place_in(&self, page: PageId, bytes: &[u8]) -> StorageResult<Option<NodeId>> {
        // Read-only precheck so hopeless probes do not dirty the page.
        let hopeless = self.pool.with_page_hinted(page, self.access_hint(), |p| {
            !p.fits(bytes.len()) && p.num_live_records() == p.num_slots()
        })?;
        if hopeless {
            return Ok(None);
        }
        // Fit check, opportunistic compaction, and insert run as one atomic
        // page operation so a concurrent placement cannot steal the space
        // between the check and the insert.  Deleted records leave dead
        // space that only compaction reclaims; compact opportunistically
        // when it could make room (slot ids survive compaction, so node
        // addresses stay valid).
        let slot = self
            .pool
            .with_page_mut_hinted(page, self.access_hint(), |p| {
                if !p.fits(bytes.len()) {
                    if p.num_live_records() < p.num_slots() {
                        p.compact();
                    }
                    if !p.fits(bytes.len()) {
                        return Ok(None);
                    }
                }
                p.insert(bytes).map(Some)
            })??;
        Ok(slot.map(|slot| NodeId::new(page, slot)))
    }

    fn note_open_page(&self, page: PageId) {
        let mut placement = self.placement.lock();
        // Reclamation can hand back a slot on a page this store no longer
        // owns (retired wholesale by a repack); such a page must never
        // become a placement candidate again.
        if !placement.pages.contains(&page) {
            return;
        }
        if let Some(pos) = placement.open_pages.iter().position(|&p| p == page) {
            placement.open_pages.remove(pos);
        }
        placement.open_pages.push(page);
        if placement.open_pages.len() > OPEN_PAGE_LIMIT {
            placement.open_pages.remove(0);
        }
    }
}

impl std::fmt::Debug for NodeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStore")
            .field("policy", &self.policy)
            .field("pages", &self.page_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;
    use crate::testing::DigitTrieOps;
    use spgist_storage::BufferPool;

    type TestNode = Node<DigitTrieOps>;

    fn store(policy: ClusteringPolicy) -> NodeStore {
        NodeStore::new(BufferPool::in_memory(), policy)
    }

    fn leaf(n: u32) -> TestNode {
        Node::Leaf {
            items: (0..n).map(|i| (i, u64::from(i))).collect(),
        }
    }

    /// Applies an update under the concurrent contract: on relocation the
    /// old record is retired and reclaimed (no readers in these tests).
    fn update_retiring(store: &NodeStore, id: NodeId, node: &TestNode) -> NodeId {
        match store.update(id, node, None).unwrap() {
            Some(new_id) => {
                store.retire_node(id).unwrap();
                store.reclaim().unwrap();
                new_id
            }
            None => id,
        }
    }

    #[test]
    fn allocate_and_read_roundtrip() {
        let store = store(ClusteringPolicy::ParentFirst);
        let node = leaf(5);
        let id = store.allocate(&node, None).unwrap();
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, node);
    }

    #[test]
    fn parent_first_packs_children_with_parent() {
        let store = store(ClusteringPolicy::ParentFirst);
        let parent_id = store.allocate(&leaf(1), None).unwrap();
        let mut same_page = 0;
        for _ in 0..10 {
            let child_id = store.allocate(&leaf(2), Some(parent_id.page)).unwrap();
            if child_id.page == parent_id.page {
                same_page += 1;
            }
        }
        assert_eq!(
            same_page, 10,
            "small children should share the parent's page"
        );
        assert_eq!(store.page_count(), 1);
    }

    #[test]
    fn new_page_per_node_never_shares() {
        let store = store(ClusteringPolicy::NewPagePerNode);
        let a = store.allocate(&leaf(1), None).unwrap();
        let b = store.allocate(&leaf(1), Some(a.page)).unwrap();
        assert_ne!(a.page, b.page);
        assert_eq!(store.page_count(), 2);
    }

    #[test]
    fn update_in_place_when_it_fits() {
        let store = store(ClusteringPolicy::ParentFirst);
        let id = store.allocate(&leaf(4), None).unwrap();
        let relocated = store.update(id, &leaf(3), None).unwrap();
        assert!(relocated.is_none());
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, leaf(3));
    }

    #[test]
    fn update_relocates_when_page_is_full() {
        let store = store(ClusteringPolicy::ParentFirst);
        let id = store.allocate(&leaf(1), None).unwrap();
        // Fill the rest of the page with other nodes.
        loop {
            let filler = leaf(100);
            let bytes_len = filler.encode().len();
            let fits = store
                .pool()
                .with_page(id.page, |p| p.fits(bytes_len))
                .unwrap();
            if !fits {
                break;
            }
            store.allocate(&filler, Some(id.page)).unwrap();
        }
        // Growing the first node must relocate it.
        let big = leaf(200);
        let new_id = store.update(id, &big, None).unwrap();
        let new_id = new_id.expect("node must relocate out of the full page");
        assert_ne!(new_id, id);
        let read: TestNode = store.read(new_id).unwrap();
        assert_eq!(read, big);
        // Copy-on-write: until the caller retires it, the old address still
        // serves the old content (a snapshot reader may hold it).
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), leaf(1));
        store.retire_node(id).unwrap();
        store.reclaim().unwrap();
        assert!(store.read::<DigitTrieOps>(id).is_err());
    }

    #[test]
    fn retired_records_survive_until_pins_pass() {
        let store = store(ClusteringPolicy::ParentFirst);
        let id = store.allocate(&leaf(7), None).unwrap();
        let pin = store.pin();
        store.retire_node(id).unwrap();
        store.reclaim().unwrap();
        assert_eq!(
            store.read::<DigitTrieOps>(id).unwrap(),
            leaf(7),
            "a pinned reader must still see the retired record"
        );
        drop(pin);
        store.reclaim().unwrap();
        assert!(store.read::<DigitTrieOps>(id).is_err());
    }

    #[test]
    fn free_reclaims_space_for_future_nodes() {
        let store = store(ClusteringPolicy::FirstFit);
        let id = store.allocate(&leaf(50), None).unwrap();
        store.free(id).unwrap();
        assert!(store.read::<DigitTrieOps>(id).is_err());
    }

    #[test]
    fn utilization_reflects_packing() {
        let store = store(ClusteringPolicy::ParentFirst);
        assert_eq!(store.utilization().unwrap(), 0.0);
        for _ in 0..200 {
            store.allocate(&leaf(8), None).unwrap();
        }
        let packed = store.utilization().unwrap();

        let sparse = store_with_policy_and_nodes(ClusteringPolicy::NewPagePerNode, 200);
        let sparse_util = sparse.utilization().unwrap();
        assert!(
            packed > sparse_util * 10.0,
            "clustered packing ({packed:.3}) should be far denser than one node per page ({sparse_util:.3})"
        );
    }

    fn store_with_policy_and_nodes(policy: ClusteringPolicy, n: usize) -> NodeStore {
        let store = store(policy);
        for _ in 0..n {
            store.allocate(&leaf(8), None).unwrap();
        }
        store
    }

    #[test]
    fn oversized_nodes_spill_across_a_record_chain() {
        let store = store(ClusteringPolicy::ParentFirst);
        // ~40 KB of items: several continuation records.
        let huge = leaf(3500);
        assert!(
            huge.encode().len() > 4 * PAGE_SIZE,
            "test node must be oversized"
        );
        let id = store.allocate(&huge, None).unwrap();
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, huge);

        // Growing and shrinking the chained node keeps it readable.
        let bigger = leaf(4000);
        let id = update_retiring(&store, id, &bigger);
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), bigger);
        let small = leaf(2);
        let id = update_retiring(&store, id, &small);
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), small);

        // Freeing a chained node reclaims its continuation records: a fresh
        // oversized allocation reuses the freed space instead of only
        // growing the file.
        let id = store.allocate(&huge, None).unwrap();
        let pages_before = store.page_count();
        store.free(id).unwrap();
        let id2 = store.allocate(&huge, None).unwrap();
        assert_eq!(
            store.page_count(),
            pages_before,
            "freed chain space is reused"
        );
        assert_eq!(store.read::<DigitTrieOps>(id2).unwrap(), huge);
    }

    #[test]
    fn shrinking_a_chained_node_never_relocates() {
        let store = store(ClusteringPolicy::ParentFirst);
        let huge = leaf(3500);
        let id = store.allocate(&huge, None).unwrap();
        // Fill the head's page so an in-place rewrite larger than the old
        // head record cannot fit.
        let filler = leaf(1);
        let filler_len = filler.encode().len() + 1;
        loop {
            let free = store.pool().with_page(id.page, |p| p.free_space()).unwrap();
            if free < filler_len + 8 {
                break;
            }
            store.allocate(&filler, Some(id.page)).unwrap();
        }
        // Shrink into the awkward window just below the inline threshold,
        // where the inline record (1 + len) is larger than the chain head
        // record it replaces (MAX_RECORD_SIZE - 256 bytes).  Deletion call
        // sites assume shrinks stay in place.
        let n = (0..u32::MAX)
            .find(|&n| {
                let len = leaf(n).encode().len();
                len > MAX_RECORD_SIZE - 250 && len < MAX_RECORD_SIZE
            })
            .expect("item granularity is far below the 250-byte window");
        let shrunk = leaf(n);
        let relocated = store.update(id, &shrunk, None).unwrap();
        assert!(relocated.is_none(), "shrinking update must stay in place");
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), shrunk);
        // Shrinking all the way down to a trivial node also stays in place.
        let tiny = leaf(2);
        assert!(store.update(id, &tiny, None).unwrap().is_none());
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), tiny);
    }

    #[test]
    fn chained_rewrite_keeps_old_chain_readable_for_pinned_readers() {
        let store = store(ClusteringPolicy::ParentFirst);
        let old = leaf(3500);
        let id = store.allocate(&old, None).unwrap();
        let pin = store.pin();
        // An in-place head rewrite replaces the spill chain with fresh
        // continuations and retires the old ones; with the pin live they
        // must not be reclaimed (the reader may hold the old head bytes and
        // walk the old chain).
        let new = leaf(3600);
        let relocated = store.update(id, &new, None).unwrap();
        store.reclaim().unwrap();
        let id = match relocated {
            Some(new_id) => {
                store.retire_node(id).unwrap();
                new_id
            }
            None => id,
        };
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), new);
        assert!(
            store.epochs().backlog() > 0,
            "old chain records must still be parked in the retire list"
        );
        drop(pin);
        store.reclaim().unwrap();
        assert_eq!(store.epochs().backlog(), 0);
        assert_eq!(store.read::<DigitTrieOps>(id).unwrap(), new);
    }

    #[test]
    fn inner_nodes_roundtrip_through_store() {
        let store = store(ClusteringPolicy::ParentFirst);
        let child = store.allocate(&leaf(1), None).unwrap();
        let inner: TestNode = Node::Inner {
            prefix: None,
            entries: vec![Entry { pred: 7, child }],
        };
        let id = store.allocate(&inner, None).unwrap();
        let read: TestNode = store.read(id).unwrap();
        assert_eq!(read, inner);
    }
}
