//! Incremental nearest-neighbour search (paper Section 5).
//!
//! The algorithm is the priority-queue best-first search of Hjaltason and
//! Samet, generalized — as the paper describes — so that instantiations whose
//! distance converges slowly (the trie with a Hamming-style distance) can
//! propagate the parent's minimum distance down to its children: each queue
//! entry for an index node carries the lower bound established for that node,
//! and [`crate::ops::SpGistOps::inner_distance`] receives it when computing
//! the children's bounds.
//!
//! The iterator is incremental: every call to `next()` performs just enough
//! work to report the next-closest item, so it can drive a query pipeline
//! (`get-next`) exactly as in the paper.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use spgist_storage::{AccessHint, EpochPin, StorageResult};

use crate::node::{Node, NodeId};
use crate::ops::SpGistOps;
use crate::tree::SpGistTree;
use crate::RowId;

enum QueueItem<O: SpGistOps> {
    /// An index node still to be expanded.
    Node { id: NodeId, level: u32 },
    /// A database object ready to be reported.
    Object { key: O::Key, row: RowId },
}

struct QueueEntry<O: SpGistOps> {
    /// Lower bound on the distance from the query to anything below this
    /// entry (exact distance for objects).
    dist: f64,
    /// Tie-breaker keeping the heap deterministic.
    seq: u64,
    item: QueueItem<O>,
}

impl<O: SpGistOps> PartialEq for QueueEntry<O> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.seq == other.seq
    }
}
impl<O: SpGistOps> Eq for QueueEntry<O> {}

impl<O: SpGistOps> Ord for QueueEntry<O> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest distance pops first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<O: SpGistOps> PartialOrd for QueueEntry<O> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental nearest-neighbour iterator over an [`SpGistTree`].
///
/// Yields `(key, row, distance)` triples in non-decreasing distance order.
///
/// Like [`crate::tree::SearchCursor`], the iterator is generic over how it
/// holds the tree: a plain `&SpGistTree` borrows, while an owning handle
/// (an `Arc`) lets the iterator outlive the borrow.  Either way it takes no
/// latch — it pins a reclamation epoch at creation, so concurrent writers
/// proceed while everything it can reach stays readable.
pub struct NnIter<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    tree: T,
    query: O::Query,
    heap: BinaryHeap<QueueEntry<O>>,
    seq: u64,
    /// Hint attached to every page fetch this iterator makes.
    hint: AccessHint,
    /// Keeps every record reachable from the captured root readable for the
    /// iterator's lifetime.
    _pin: EpochPin,
}

impl<T, O> NnIter<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    /// Builds the iterator from any owned or borrowed handle on a tree.
    /// The iterator pins a reclamation epoch (never a latch) for its
    /// lifetime.
    pub fn over(tree: T, query: O::Query) -> Self {
        // Pin first, then capture the root, so records retired afterwards
        // stay readable for this iterator.
        let pin = tree.store().pin();
        let root = tree.root();
        let mut iter = NnIter {
            tree,
            query,
            heap: BinaryHeap::new(),
            seq: 0,
            hint: AccessHint::Normal,
            _pin: pin,
        };
        if let Some(root) = root {
            // "Insert the root node into the priority queue with minimum
            // distance 0" (paper Figure 5).
            iter.push(0.0, QueueItem::Node { id: root, level: 0 });
        }
        iter
    }

    /// Attaches an [`AccessHint`] to every page fetch (see
    /// [`crate::tree::SearchCursor::with_hint`]): keep the default
    /// [`AccessHint::Normal`] for ordinary k-NN queries, pass
    /// [`AccessHint::Scan`] when draining most of the index in distance
    /// order.
    pub fn with_hint(mut self, hint: AccessHint) -> Self {
        self.hint = hint;
        self
    }

    fn push(&mut self, dist: f64, item: QueueItem<O>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueueEntry { dist, seq, item });
    }

    fn expand(&mut self, id: NodeId, level: u32, parent_dist: f64) -> StorageResult<()> {
        // Compute the children's bounds before touching the heap: `ops`
        // borrows through the tree handle, which the heap pushes must not
        // overlap.
        let mut discovered: Vec<(f64, QueueItem<O>)> = Vec::new();
        {
            let ops = self.tree.ops_ref();
            match self.tree.store().read_hinted::<O>(id, self.hint)? {
                Node::Leaf { items } => {
                    for (key, row) in items {
                        let dist = ops.leaf_distance(&key, &self.query);
                        discovered.push((dist, QueueItem::Object { key, row }));
                    }
                }
                Node::Inner { prefix, entries } => {
                    let delta = ops.descend_levels(prefix.as_ref());
                    for entry in entries {
                        let dist = ops.inner_distance(
                            prefix.as_ref(),
                            &entry.pred,
                            &self.query,
                            parent_dist,
                            level,
                        );
                        discovered.push((
                            dist,
                            QueueItem::Node {
                                id: entry.child,
                                level: level + delta,
                            },
                        ));
                    }
                }
            }
        }
        for (dist, item) in discovered {
            self.push(dist, item);
        }
        Ok(())
    }
}

impl<T, O> Iterator for NnIter<T, O>
where
    T: std::ops::Deref<Target = SpGistTree<O>>,
    O: SpGistOps,
{
    type Item = StorageResult<(O::Key, RowId, f64)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(entry) = self.heap.pop() {
            match entry.item {
                QueueItem::Object { key, row } => return Some(Ok((key, row, entry.dist))),
                QueueItem::Node { id, level } => {
                    if let Err(e) = self.expand(id, level, entry.dist) {
                        return Some(Err(e));
                    }
                }
            }
        }
        None
    }
}

impl<O: SpGistOps> SpGistTree<O> {
    /// Collects the `k` nearest neighbours, discarding distances — a
    /// convenience for callers that only need the keys.
    pub fn nn_keys(&self, query: O::Query, k: usize) -> StorageResult<Vec<(O::Key, RowId)>> {
        self.nn_iter(query)
            .take(k)
            .map(|r| r.map(|(key, row, _)| (key, row)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::DigitTrieOps;
    use spgist_storage::BufferPool;

    fn tree_with(keys: &[u32]) -> SpGistTree<DigitTrieOps> {
        let tree = SpGistTree::create(BufferPool::in_memory(), DigitTrieOps::default()).unwrap();
        for &k in keys {
            tree.insert(k, u64::from(k)).unwrap();
        }
        tree
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let tree = tree_with(&[]);
        assert_eq!(tree.nn_iter(5).count(), 0);
    }

    #[test]
    fn yields_every_item_exactly_once_in_distance_order() {
        let keys: Vec<u32> = (0..300).map(|i| i * 7).collect();
        let tree = tree_with(&keys);
        let all: Vec<(u32, u64, f64)> = tree
            .nn_iter(1000)
            .collect::<StorageResult<Vec<_>>>()
            .unwrap();
        assert_eq!(all.len(), keys.len());
        // Non-decreasing distances.
        assert!(all.windows(2).all(|w| w[0].2 <= w[1].2));
        // Exactly the inserted keys, each once.
        let mut seen: Vec<u32> = all.iter().map(|(k, _, _)| *k).collect();
        seen.sort_unstable();
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn incremental_prefix_matches_full_ordering() {
        let keys: Vec<u32> = (0..200).collect();
        let tree = tree_with(&keys);
        let first_five = tree.nn_search(42, 5).unwrap();
        let keys_five: Vec<u32> = first_five.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys_five[0], 42);
        // All of the five closest keys lie within distance 2 of 42.
        assert!(first_five.iter().all(|(_, _, d)| *d <= 2.0));
    }

    #[test]
    fn nn_keys_drops_distances() {
        let tree = tree_with(&[5, 6, 7]);
        let keys = tree.nn_keys(6, 2).unwrap();
        assert_eq!(keys[0].0, 6);
        assert_eq!(keys.len(), 2);
    }
}
